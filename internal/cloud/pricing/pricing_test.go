package pricing

import (
	"math"
	"testing"
	"time"
)

func TestMemoryBlocks(t *testing.T) {
	blocks := MemoryBlocks()
	if blocks[0] != 128 || blocks[len(blocks)-1] != 3008 {
		t.Fatalf("blocks span %d..%d", blocks[0], blocks[len(blocks)-1])
	}
	// (3008-128)/64 + 1 = 46 blocks.
	if len(blocks) != 46 {
		t.Fatalf("%d blocks, want 46", len(blocks))
	}
	for i := 1; i < len(blocks); i++ {
		if blocks[i]-blocks[i-1] != 64 {
			t.Fatalf("non-uniform step at %d", i)
		}
	}
}

// The paper's own numbers: MobileNet at 512 MB for 22.03 s costs $0.00018.
func TestLambdaCostMatchesPaperExamples(t *testing.T) {
	cases := []struct {
		memMB int
		sec   float64
		want  float64
	}{
		{512, 22.03, 0.00018},
		{1024, 10.65, 0.00017},
		{1536, 7.52, 0.00019},
		{2048, 6.38, 0.00021},
		{3008, 6.32, 0.00031},
	}
	for _, c := range cases {
		d := time.Duration(c.sec * float64(time.Second))
		got := LambdaExecutionCost(c.memMB, d)
		if math.Abs(got-c.want) > 0.00001 {
			t.Errorf("cost(%dMB, %.2fs) = %.6f, paper %.5f", c.memMB, c.sec, got, c.want)
		}
	}
}

func TestLambdaCostRoundsUpTo100ms(t *testing.T) {
	a := LambdaExecutionCost(1024, 101*time.Millisecond)
	b := LambdaExecutionCost(1024, 200*time.Millisecond)
	if a != b {
		t.Fatalf("billing granularity not applied: %v vs %v", a, b)
	}
	if LambdaExecutionCost(1024, 0) < 0 {
		t.Fatal("negative cost")
	}
}

func TestInstanceHourlyCost(t *testing.T) {
	got := InstanceHourlyCost(SageHostingM4XLargeHourly, 30*time.Minute)
	if math.Abs(got-0.14) > 1e-9 {
		t.Fatalf("half hour of m4.xlarge = %v, want 0.14", got)
	}
	if InstanceHourlyCost(1, -time.Hour) != 0 {
		t.Fatal("negative duration not clamped")
	}
}

func TestStoragePerGBSecondDerivation(t *testing.T) {
	want := S3StorageGBMonth / (30 * 24 * 3600)
	if S3StoragePerGBSecond != want {
		t.Fatalf("storage rate %v", S3StoragePerGBSecond)
	}
}
