// Package pricing is the October–November 2020 AWS price book the paper's
// experiments were billed under. All figures are public list prices for
// us-east-1 at that time; every simulator in internal/cloud meters cost
// through this package so that experiments reproduce the paper's dollar
// amounts (e.g. MobileNet at 512 MB for 22.03 s → $0.00018).
package pricing

import "time"

// Lambda pricing and quotas (2020).
const (
	// LambdaGBSecond is the execution price per GB-second.
	LambdaGBSecond = 0.0000166667
	// LambdaInvocation is the per-request price ($0.20 per million).
	LambdaInvocation = 0.0000002

	// LambdaMinMemoryMB is the smallest allocatable memory block (M in
	// the paper's constraint (7)).
	LambdaMinMemoryMB = 128
	// LambdaMemoryStepMB is the block increment (β in constraint (7)).
	LambdaMemoryStepMB = 64
	// LambdaMaxMemoryMB is the 2020 allocation cap.
	LambdaMaxMemoryMB = 3008

	// LambdaDeployLimitMB is the unzipped deployment-package cap (A).
	LambdaDeployLimitMB = 250
	// LambdaTmpLimitMB is the /tmp ephemeral-storage cap (J).
	LambdaTmpLimitMB = 512
	// LambdaMaxLayers is the function-layer cap.
	LambdaMaxLayers = 5
	// LambdaTimeout is the maximum function execution time.
	LambdaTimeout = 900 * time.Second

	// LambdaBillingGranularity: 2020 Lambda billed in 100 ms increments.
	LambdaBillingGranularity = 100 * time.Millisecond

	// LambdaAccountConcurrency is the default account-level concurrent-
	// execution limit (1,000 in 2020); invocations beyond it are rejected
	// with a 429 TooManyRequestsException.
	LambdaAccountConcurrency = 1000
)

// MemoryBlocks returns every allocatable Lambda memory size in MB, from
// the minimum block to the cap in step increments (128, 192, …, 3008) —
// the L choices of the paper's decision variable x.
func MemoryBlocks() []int {
	return Quota2020().MemoryBlocks()
}

// Quota captures the platform limits the formulation constrains against.
// The paper evaluates under the October–November 2020 quotas and names
// the December 2020 update (10,240 MB in 1 MB increments) as future
// work; both are provided.
type Quota struct {
	// MinMemoryMB is M, MemoryStepMB is β (constraint 7).
	MinMemoryMB  int
	MemoryStepMB int
	MaxMemoryMB  int
	// DeployLimitMB is A (constraint 4), TmpLimitMB is J (constraint 5).
	DeployLimitMB int
	TmpLimitMB    int
	MaxLayers     int
	Timeout       time.Duration
	// BillingGranularity is the execution-time rounding unit.
	// (CPU-share behaviour lives in perf.Params: a single-request
	// inference handler cannot exploit more than one vCPU, so the share
	// curve is quota-independent.)
	BillingGranularity time.Duration
	// AccountConcurrency is the account-wide concurrent-execution limit;
	// 0 falls back to the 2020 default of 1,000.
	AccountConcurrency int
}

// Quota2020 returns the limits the paper's experiments ran under.
func Quota2020() Quota {
	return Quota{
		MinMemoryMB: LambdaMinMemoryMB, MemoryStepMB: LambdaMemoryStepMB,
		MaxMemoryMB:   LambdaMaxMemoryMB,
		DeployLimitMB: LambdaDeployLimitMB, TmpLimitMB: LambdaTmpLimitMB,
		MaxLayers: LambdaMaxLayers, Timeout: LambdaTimeout,
		BillingGranularity: LambdaBillingGranularity,
		AccountConcurrency: LambdaAccountConcurrency,
	}
}

// Quota2021 returns the December 2020 update: 10,240 MB maximum in 1 MB
// increments and 1 ms billing granularity. Deployment and /tmp limits
// were unchanged at the time.
func Quota2021() Quota {
	return Quota{
		MinMemoryMB: 128, MemoryStepMB: 1, MaxMemoryMB: 10240,
		DeployLimitMB: LambdaDeployLimitMB, TmpLimitMB: LambdaTmpLimitMB,
		MaxLayers: LambdaMaxLayers, Timeout: LambdaTimeout,
		BillingGranularity: time.Millisecond,
		AccountConcurrency: LambdaAccountConcurrency,
	}
}

// ValidMemory reports whether memMB is allocatable under the quota.
func (q Quota) ValidMemory(memMB int) bool {
	return memMB >= q.MinMemoryMB && memMB <= q.MaxMemoryMB &&
		(memMB-q.MinMemoryMB)%q.MemoryStepMB == 0
}

// MemoryBlocks enumerates the quota's allocatable sizes. For fine-grained
// quotas this can be large (10,113 blocks for 2021); the optimizer
// accepts a coarser search grid via SearchBlocks.
func (q Quota) MemoryBlocks() []int {
	var blocks []int
	for mb := q.MinMemoryMB; mb <= q.MaxMemoryMB; mb += q.MemoryStepMB {
		blocks = append(blocks, mb)
	}
	return blocks
}

// SearchBlocks enumerates allocatable sizes on a grid of at least
// strideMB (snapped to valid blocks), always including the maximum.
func (q Quota) SearchBlocks(strideMB int) []int {
	if strideMB < q.MemoryStepMB {
		strideMB = q.MemoryStepMB
	}
	strideMB -= strideMB % q.MemoryStepMB
	if strideMB == 0 {
		strideMB = q.MemoryStepMB
	}
	var blocks []int
	for mb := q.MinMemoryMB; mb <= q.MaxMemoryMB; mb += strideMB {
		blocks = append(blocks, mb)
	}
	if blocks[len(blocks)-1] != q.MaxMemoryMB {
		blocks = append(blocks, q.MaxMemoryMB)
	}
	return blocks
}

// ExecutionCost returns the execution charge under the quota's billing
// granularity.
func (q Quota) ExecutionCost(memMB int, d time.Duration) float64 {
	if d < 0 {
		d = 0
	}
	g := q.BillingGranularity
	if g <= 0 {
		g = LambdaBillingGranularity
	}
	billed := (d + g - 1) / g * g
	return float64(memMB) / 1024.0 * billed.Seconds() * LambdaGBSecond
}

// LambdaExecutionCost returns the execution charge for a function with
// memMB of memory running for d, rounded up to the billing granularity,
// excluding the invocation fee.
func LambdaExecutionCost(memMB int, d time.Duration) float64 {
	if d < 0 {
		d = 0
	}
	g := LambdaBillingGranularity
	billed := (d + g - 1) / g * g
	gb := float64(memMB) / 1024.0
	return gb * billed.Seconds() * LambdaGBSecond
}

// S3 pricing (2020, standard tier).
const (
	// S3PutRequest is the price per PUT/COPY/POST/LIST request (U).
	S3PutRequest = 0.000005
	// S3GetRequest is the price per GET/SELECT request (G).
	S3GetRequest = 0.0000004
	// S3StorageGBMonth is the storage price per GB-month (basis for H).
	S3StorageGBMonth = 0.023
)

// S3StoragePerGBSecond is the storage price per GB-second (H in Eq. (3)),
// derived from the monthly rate over a 30-day month.
const S3StoragePerGBSecond = S3StorageGBMonth / (30 * 24 * 3600)

// Step Functions pricing (2020).
const (
	// StepFnTransition is the price per state transition ($0.025/1000).
	StepFnTransition = 0.000025
	// StepFnTransitionDelay is the observed latency per state transition;
	// the paper's footnote 2 measured ≈15 s over a 10-state workflow.
	StepFnTransitionDelay = 1500 * time.Millisecond
)

// SageMaker on-demand instance pricing (2020) and operational latencies.
const (
	// SageNotebookT2MediumHourly is the ml.t2.medium notebook price.
	SageNotebookT2MediumHourly = 0.0464
	// SageHostingM4XLargeHourly is the ml.m4.xlarge hosting price.
	SageHostingM4XLargeHourly = 0.28
	// SageStorageGBMonth is SageMaker ML storage per GB-month.
	SageStorageGBMonth = 0.14
	// SageDataProcessingGB is the per-GB data processing charge for
	// hosting instances (in+out).
	SageDataProcessingGB = 0.016
)

// InstanceHourlyCost converts an hourly rate and a runtime into dollars
// (per-second proration, as AWS bills on-demand ML instances).
func InstanceHourlyCost(hourly float64, d time.Duration) float64 {
	if d < 0 {
		d = 0
	}
	return hourly * d.Hours()
}
