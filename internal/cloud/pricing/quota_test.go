package pricing

import (
	"testing"
	"time"
)

func TestQuota2020MatchesConstants(t *testing.T) {
	q := Quota2020()
	if q.MinMemoryMB != 128 || q.MaxMemoryMB != 3008 || q.MemoryStepMB != 64 {
		t.Fatalf("2020 memory quota %+v", q)
	}
	if q.DeployLimitMB != 250 || q.TmpLimitMB != 512 || q.MaxLayers != 5 {
		t.Fatalf("2020 size quota %+v", q)
	}
	if len(q.MemoryBlocks()) != 46 {
		t.Fatalf("2020 blocks %d", len(q.MemoryBlocks()))
	}
}

func TestQuota2021Granularity(t *testing.T) {
	q := Quota2021()
	if q.MaxMemoryMB != 10240 || q.MemoryStepMB != 1 {
		t.Fatalf("2021 quota %+v", q)
	}
	if !q.ValidMemory(4321) {
		t.Fatal("2021 quota rejects 4321 MB")
	}
	if q.ValidMemory(10241) || q.ValidMemory(127) {
		t.Fatal("2021 quota accepts out-of-range memory")
	}
	if got := len(q.MemoryBlocks()); got != 10113 {
		t.Fatalf("2021 blocks %d, want 10113", got)
	}
}

func TestQuotaValidMemory2020(t *testing.T) {
	q := Quota2020()
	if !q.ValidMemory(1792) || q.ValidMemory(1800) {
		t.Fatal("2020 grid validation wrong")
	}
}

func TestSearchBlocks(t *testing.T) {
	q := Quota2021()
	blocks := q.SearchBlocks(512)
	if blocks[0] != 128 {
		t.Fatalf("first block %d", blocks[0])
	}
	if blocks[len(blocks)-1] != 10240 {
		t.Fatal("max block missing from search grid")
	}
	for i := 1; i < len(blocks)-1; i++ {
		if blocks[i]-blocks[i-1] != 512 {
			t.Fatalf("non-uniform stride at %d", i)
		}
	}
	// Stride below the quota step snaps up to the step.
	q20 := Quota2020()
	fine := q20.SearchBlocks(1)
	if len(fine) != 46 {
		t.Fatalf("2020 fine grid has %d blocks", len(fine))
	}
}

func TestQuotaExecutionCostGranularity(t *testing.T) {
	q20, q21 := Quota2020(), Quota2021()
	d := 101 * time.Millisecond
	// 2020 bills 200 ms, 2021 bills 101 ms.
	c20 := q20.ExecutionCost(1024, d)
	c21 := q21.ExecutionCost(1024, d)
	if c21 >= c20 {
		t.Fatalf("1 ms granularity not cheaper: %v vs %v", c21, c20)
	}
	want := 1.0 * 0.101 * LambdaGBSecond
	if diff := c21 - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("2021 cost %v, want %v", c21, want)
	}
	if q20.ExecutionCost(1024, -time.Second) < 0 {
		t.Fatal("negative duration produced negative cost")
	}
}
