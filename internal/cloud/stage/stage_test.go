package stage_test

import (
	"bytes"
	"testing"
	"time"

	"ampsinf/internal/cloud/billing"
	"ampsinf/internal/cloud/redis"
	"ampsinf/internal/cloud/s3"
	"ampsinf/internal/cloud/stage"
)

// implementations returns every stage.Store the framework ships, each on
// its own meter, so the conformance suite below exercises them all
// through the interface alone.
func implementations() map[string]struct {
	store stage.Store
	meter *billing.Meter
} {
	s3m, rdm := &billing.Meter{}, &billing.Meter{}
	return map[string]struct {
		store stage.Store
		meter *billing.Meter
	}{
		"s3":    {s3.New(s3.DefaultConfig(), s3m), s3m},
		"redis": {redis.New(redis.DefaultConfig(), rdm), rdm},
	}
}

func TestStoreRoundTrip(t *testing.T) {
	for name, impl := range implementations() {
		t.Run(name, func(t *testing.T) {
			st := impl.store
			data := []byte("activation-tensor-bytes")
			putDur, err := st.Put("job/out0", data)
			if err != nil {
				t.Fatal(err)
			}
			if putDur <= 0 {
				t.Fatalf("put transfer time %v", putDur)
			}
			got, getDur, err := st.Get("job/out0")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("round trip corrupted: %q", got)
			}
			if getDur <= 0 {
				t.Fatalf("get transfer time %v", getDur)
			}
			// The returned object is a copy: mutating it must not corrupt
			// the stored one.
			got[0] = 'X'
			again, _, err := st.Get("job/out0")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(again, data) {
				t.Fatal("store returned an aliased buffer")
			}
		})
	}
}

func TestStoreSizeAccounting(t *testing.T) {
	for name, impl := range implementations() {
		t.Run(name, func(t *testing.T) {
			st := impl.store
			if _, ok := st.Head("missing"); ok {
				t.Fatal("Head reported a missing key")
			}
			if _, err := st.Put("k", make([]byte, 1000)); err != nil {
				t.Fatal(err)
			}
			if n, ok := st.Head("k"); !ok || n != 1000 {
				t.Fatalf("Head = (%d, %v), want (1000, true)", n, ok)
			}
			// Overwrites replace the object and its size.
			if _, err := st.Put("k", make([]byte, 64)); err != nil {
				t.Fatal(err)
			}
			if n, ok := st.Head("k"); !ok || n != 64 {
				t.Fatalf("Head after overwrite = (%d, %v), want (64, true)", n, ok)
			}
			// Bigger objects take at least as long to move.
			small, _ := st.Put("small", make([]byte, 1))
			big, _ := st.Put("big", make([]byte, 10<<20))
			if big <= small {
				t.Fatalf("10 MB transfer (%v) not slower than 1 B (%v)", big, small)
			}
			// Zero-length objects round-trip.
			if _, err := st.Put("empty", nil); err != nil {
				t.Fatal(err)
			}
			if n, ok := st.Head("empty"); !ok || n != 0 {
				t.Fatalf("empty Head = (%d, %v)", n, ok)
			}
			if data, _, err := st.Get("empty"); err != nil || len(data) != 0 {
				t.Fatalf("empty Get = (%v, %v)", data, err)
			}
		})
	}
}

func TestStoreErrorPaths(t *testing.T) {
	for name, impl := range implementations() {
		t.Run(name, func(t *testing.T) {
			st := impl.store
			if _, _, err := st.Get("never-put"); err == nil {
				t.Fatal("Get of a missing key succeeded")
			}
			// Delete is idempotent and makes the key unreadable.
			if _, err := st.Put("k", []byte("x")); err != nil {
				t.Fatal(err)
			}
			st.Delete("k")
			st.Delete("k")
			if _, _, err := st.Get("k"); err == nil {
				t.Fatal("Get after Delete succeeded")
			}
			if _, ok := st.Head("k"); ok {
				t.Fatal("Head after Delete reported the key")
			}
			st.Delete("never-put") // deleting a missing key is a no-op
		})
	}
}

func TestStoreChargesStorage(t *testing.T) {
	for name, impl := range implementations() {
		t.Run(name, func(t *testing.T) {
			before := impl.meter.Total()
			impl.store.ChargeStorage(1<<30, time.Hour)
			if impl.meter.Total() <= before {
				t.Fatal("holding 1 GB for an hour charged nothing")
			}
			// A zero-duration hold charges nothing on any backend.
			mid := impl.meter.Total()
			impl.store.ChargeStorage(1<<30, 0)
			if impl.meter.Total() != mid {
				t.Fatal("zero-duration hold charged")
			}
		})
	}
}
