// Package stage defines the intermediate-storage interface partition
// lambdas stage activations through. The paper uses S3 and notes that
// "AMPS-Inf can be extended to use any intermediate storage such as Redis
// and Pocket ... to further increase its performance"; internal/cloud/s3
// and internal/cloud/redis implement this interface.
package stage

import "time"

// Store is an object store with a simulated transfer-time model and a
// storage-cost meter.
type Store interface {
	// Put stores data under key and returns the simulated transfer time.
	Put(key string, data []byte) (time.Duration, error)
	// Get retrieves the object and the simulated transfer time.
	Get(key string) ([]byte, time.Duration, error)
	// Head reports an object's size without charging a request.
	Head(key string) (int64, bool)
	// Delete removes a key (idempotent).
	Delete(key string)
	// ChargeStorage meters the cost of holding bytes for d (the q·T·H
	// term for S3; instance time for cache-based stores).
	ChargeStorage(bytes int64, d time.Duration)
}
