// Package stage defines the intermediate-storage interface partition
// lambdas stage activations through. The paper uses S3 and notes that
// "AMPS-Inf can be extended to use any intermediate storage such as Redis
// and Pocket ... to further increase its performance"; internal/cloud/s3
// and internal/cloud/redis implement this interface.
package stage

import "time"

// Store is an object store with a simulated transfer-time model and a
// storage-cost meter.
type Store interface {
	// Put stores data under key and returns the simulated transfer time.
	Put(key string, data []byte) (time.Duration, error)
	// Get retrieves the object and the simulated transfer time.
	Get(key string) ([]byte, time.Duration, error)
	// Head reports an object's size without charging a request.
	Head(key string) (int64, bool)
	// Delete removes a key (idempotent).
	Delete(key string)
	// ChargeStorage meters the cost of holding bytes for d (the q·T·H
	// term for S3; instance time for cache-based stores).
	ChargeStorage(bytes int64, d time.Duration)
}

// Sizer is an optional Store extension for callers that need an
// object's size and transfer time but not its bytes: GetSize must
// charge, meter and fault exactly like Get — same request fee, same
// counters, same injector draw — without materializing a copy of the
// data. Serving hot paths that only propagate simulated sizes use it
// to keep GETs allocation-free.
type Sizer interface {
	GetSize(key string) (int64, time.Duration, error)
}

// StablePutter is an optional Store extension for callers whose data
// buffer is immutable for the lifetime of the stored object: PutStable
// must behave exactly like Put — same charges, counters and injector
// draw — but may retain the caller's slice instead of copying it.
type StablePutter interface {
	PutStable(key string, data []byte) (time.Duration, error)
}
