// Package redis simulates an ElastiCache-style in-memory staging store —
// the faster intermediate storage the paper's discussion proposes in
// place of S3. Requests have sub-millisecond latency and high bandwidth,
// but the backing cache instance bills by the hour whether or not it is
// busy, eroding serverless pay-per-use: the storage-backend ablation
// quantifies that trade.
package redis

import (
	"fmt"
	"sync"
	"time"

	"ampsinf/internal/cloud/billing"
	"ampsinf/internal/cloud/stage"
)

// Config sets the transfer and pricing model. Zero fields take defaults.
type Config struct {
	// BandwidthMBps is the lambda↔cache throughput.
	BandwidthMBps float64
	// RequestLatency is the per-command round trip.
	RequestLatency time.Duration
	// HourlyUSD is the cache instance's on-demand price
	// (cache.t3.medium ≈ $0.068/h in 2020).
	HourlyUSD float64
}

// DefaultConfig mirrors a same-AZ ElastiCache node.
func DefaultConfig() Config {
	return Config{BandwidthMBps: 120, RequestLatency: time.Millisecond, HourlyUSD: 0.068}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	if c.BandwidthMBps <= 0 {
		c.BandwidthMBps = d.BandwidthMBps
	}
	if c.RequestLatency <= 0 {
		c.RequestLatency = d.RequestLatency
	}
	if c.HourlyUSD <= 0 {
		c.HourlyUSD = d.HourlyUSD
	}
}

// Store is a simulated cache node.
type Store struct {
	cfg   Config
	meter *billing.Meter

	mu      sync.RWMutex
	objects map[string][]byte
}

var _ stage.Store = (*Store)(nil)

// New creates a store charging into meter.
func New(cfg Config, meter *billing.Meter) *Store {
	cfg.fillDefaults()
	return &Store{cfg: cfg, meter: meter, objects: make(map[string][]byte)}
}

// TransferTime returns the simulated time to move n bytes.
func (s *Store) TransferTime(n int64) time.Duration {
	if n < 0 {
		n = 0
	}
	sec := float64(n) / (s.cfg.BandwidthMBps * 1024 * 1024)
	return s.cfg.RequestLatency + time.Duration(sec*float64(time.Second))
}

// Put stores data (no per-request fee: cache commands are free once the
// instance runs).
func (s *Store) Put(key string, data []byte) (time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := make([]byte, len(data))
	copy(cp, data)
	s.objects[key] = cp
	return s.TransferTime(int64(len(data))), nil
}

// Get retrieves a copy of the object.
func (s *Store) Get(key string) ([]byte, time.Duration, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.objects[key]
	if !ok {
		return nil, 0, fmt.Errorf("redis: no such key %q", key)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, s.TransferTime(int64(len(data))), nil
}

// Head reports whether key exists and its size.
func (s *Store) Head(key string) (int64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.objects[key]
	return int64(len(data)), ok
}

// Delete removes key (idempotent).
func (s *Store) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.objects, key)
}

// ChargeStorage bills the cache instance for the holding window: unlike
// S3's per-GB-second rate, the node costs its hourly price whenever it
// must be up, regardless of how little it stores.
func (s *Store) ChargeStorage(bytes int64, d time.Duration) {
	if d <= 0 {
		return
	}
	s.meter.Add("redis:instance", s.cfg.HourlyUSD*d.Hours())
}
