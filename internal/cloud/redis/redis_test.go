package redis

import (
	"bytes"
	"testing"
	"time"

	"ampsinf/internal/cloud/billing"
	"ampsinf/internal/cloud/s3"
)

func newStore() (*Store, *billing.Meter) {
	m := &billing.Meter{}
	return New(Config{}, m), m
}

func TestPutGetRoundTrip(t *testing.T) {
	s, _ := newStore()
	if _, err := s.Put("k", []byte("activations")); err != nil {
		t.Fatal(err)
	}
	got, _, err := s.Get("k")
	if err != nil || !bytes.Equal(got, []byte("activations")) {
		t.Fatalf("get = %q, %v", got, err)
	}
	got[0] = 'X'
	again, _, _ := s.Get("k")
	if again[0] != 'a' {
		t.Fatal("Get aliases stored data")
	}
	if _, _, err := s.Get("missing"); err == nil {
		t.Fatal("missing key returned")
	}
	if n, ok := s.Head("k"); !ok || n != 11 {
		t.Fatalf("head = %d, %v", n, ok)
	}
	s.Delete("k")
	s.Delete("k")
	if _, ok := s.Head("k"); ok {
		t.Fatal("key survived delete")
	}
}

// The whole point: a cache round-trip is far faster than S3's.
func TestFasterThanS3(t *testing.T) {
	meter := &billing.Meter{}
	r := New(Config{}, meter)
	obj := s3.New(s3.DefaultConfig(), meter)
	const n = 8 << 20
	if r.TransferTime(n) >= obj.TransferTime(n) {
		t.Fatalf("redis transfer %v not faster than s3 %v", r.TransferTime(n), obj.TransferTime(n))
	}
	if r.TransferTime(-1) != DefaultConfig().RequestLatency {
		t.Fatal("negative size not clamped")
	}
}

// The flip side: holding data costs instance-hours, not per-GB-seconds.
func TestInstanceBilling(t *testing.T) {
	s, meter := newStore()
	s.ChargeStorage(0, time.Hour) // instance runs even while empty
	want := DefaultConfig().HourlyUSD
	got := meter.Category("redis:instance")
	if got < want*0.999 || got > want*1.001 {
		t.Fatalf("hour of cache = $%v, want $%v", got, want)
	}
	s.ChargeStorage(1<<30, -time.Second) // no refunds
	if meter.Category("redis:instance") != got {
		t.Fatal("negative duration charged")
	}
	// Requests themselves are free (no s3-style fees).
	if meter.Total() != got {
		t.Fatalf("unexpected extra charges: %v", meter.Breakdown())
	}
}
