// Package stepfn simulates AWS Step Functions as used by the Serfer
// baseline: a standard state machine that invokes one Lambda function per
// state, paying a per-transition fee and — as the paper's footnote 2
// measured — a substantial per-transition latency (≈15 s over a ten-state
// workflow), which is exactly why AMPS-Inf avoids Step Functions.
package stepfn

import (
	"fmt"
	"time"

	"ampsinf/internal/cloud/billing"
	"ampsinf/internal/cloud/lambda"
	"ampsinf/internal/cloud/pricing"
)

// State is one task state: it invokes FunctionName with the current
// payload and passes the response to the next state.
type State struct {
	Name         string
	FunctionName string
}

// Machine is a linear standard workflow.
type Machine struct {
	Name   string
	States []State
}

// Engine executes state machines against a Lambda platform.
type Engine struct {
	platform *lambda.Platform
	meter    *billing.Meter
	// TransitionDelay defaults to the measured per-transition latency.
	TransitionDelay time.Duration
}

// NewEngine creates an execution engine.
func NewEngine(platform *lambda.Platform, meter *billing.Meter) *Engine {
	return &Engine{platform: platform, meter: meter, TransitionDelay: pricing.StepFnTransitionDelay}
}

// Meter returns the engine's billing meter.
func (e *Engine) Meter() *billing.Meter { return e.meter }

// Execution reports one state-machine run.
type Execution struct {
	// Duration is total simulated wall time: transitions + invocations.
	Duration time.Duration
	// TransitionTime is the part spent in state transitions alone.
	TransitionTime time.Duration
	// Transitions is the number of billed state transitions (start +
	// one per state).
	Transitions int
	// Cost sums transition fees and invocation costs.
	Cost   float64
	Output []byte
}

// Run executes the machine on input. Each state transition adds the
// engine's transition delay and fee; each state invokes its function
// synchronously (self-billing).
func (e *Engine) Run(m Machine, input []byte) (*Execution, error) {
	if len(m.States) == 0 {
		return nil, fmt.Errorf("stepfn: machine %q has no states", m.Name)
	}
	exec := &Execution{}
	payload := input
	// The start transition plus one per state (AWS bills transitions
	// into each state).
	for _, st := range m.States {
		exec.Transitions++
		exec.TransitionTime += e.TransitionDelay
		exec.Duration += e.TransitionDelay
		e.meter.Add("stepfn:transitions", pricing.StepFnTransition)
		exec.Cost += pricing.StepFnTransition

		res, err := e.platform.Invoke(st.FunctionName, payload, lambda.InvokeOptions{})
		if err != nil {
			return exec, fmt.Errorf("stepfn: state %q: %w", st.Name, err)
		}
		exec.Duration += res.Duration
		exec.Cost += res.Cost
		payload = res.Response
	}
	// Final transition to the terminal state.
	exec.Transitions++
	exec.TransitionTime += e.TransitionDelay
	exec.Duration += e.TransitionDelay
	e.meter.Add("stepfn:transitions", pricing.StepFnTransition)
	exec.Cost += pricing.StepFnTransition

	exec.Output = payload
	return exec, nil
}
