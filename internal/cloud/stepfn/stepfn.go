// Package stepfn simulates AWS Step Functions as used by the Serfer
// baseline: a standard state machine that invokes one Lambda function per
// state, paying a per-transition fee and — as the paper's footnote 2
// measured — a substantial per-transition latency (≈15 s over a ten-state
// workflow), which is exactly why AMPS-Inf avoids Step Functions.
package stepfn

import (
	"fmt"
	"time"

	"ampsinf/internal/cloud/billing"
	"ampsinf/internal/cloud/lambda"
	"ampsinf/internal/cloud/pricing"
	"ampsinf/internal/obs"
)

// State is one task state: it invokes FunctionName with the current
// payload and passes the response to the next state.
type State struct {
	Name         string
	FunctionName string
}

// Machine is a linear standard workflow.
type Machine struct {
	Name   string
	States []State
}

// Engine executes state machines against a Lambda platform.
type Engine struct {
	platform *lambda.Platform
	meter    *billing.Meter
	// TransitionDelay defaults to the measured per-transition latency.
	TransitionDelay time.Duration
	// Tracer, when set (and installed as the meter's observer), collects
	// each execution's span tree with exact cost attribution.
	Tracer *obs.Tracer
	// Metrics, when set, counts transitions as executions run.
	Metrics *obs.Metrics
}

// NewEngine creates an execution engine.
func NewEngine(platform *lambda.Platform, meter *billing.Meter) *Engine {
	return &Engine{platform: platform, meter: meter, TransitionDelay: pricing.StepFnTransitionDelay}
}

// Meter returns the engine's billing meter.
func (e *Engine) Meter() *billing.Meter { return e.meter }

// Execution reports one state-machine run.
type Execution struct {
	// Duration is total simulated wall time: transitions + invocations.
	Duration time.Duration
	// TransitionTime is the part spent in state transitions alone.
	TransitionTime time.Duration
	// Transitions is the number of billed state transitions (start +
	// one per state).
	Transitions int
	// Cost sums transition fees and invocation costs.
	Cost   float64
	Output []byte
	// Trace is the execution's span tree (transitions and states on the
	// simulated clock); nil when the execution failed mid-machine.
	Trace *obs.Span
}

// Run executes the machine on input. Each state transition adds the
// engine's transition delay and fee; each state invokes its function
// synchronously (self-billing).
func (e *Engine) Run(m Machine, input []byte) (*Execution, error) {
	if len(m.States) == 0 {
		return nil, fmt.Errorf("stepfn: machine %q has no states", m.Name)
	}
	tr := e.Tracer
	tr.BeginJob()
	var root *obs.Span
	defer func() { tr.EndJob(root) }()
	span := &obs.Span{Name: "stepfn:" + m.Name, Kind: obs.KindJob, Track: "stepfn"}

	exec := &Execution{}
	payload := input
	var cursor time.Duration
	// The start transition plus one per state (AWS bills transitions
	// into each state).
	for _, st := range m.States {
		cursor = e.transition(exec, span, cursor)

		bkt := tr.NewBucket()
		prev := tr.SetSink(bkt)
		res, err := e.platform.Invoke(st.FunctionName, payload, lambda.InvokeOptions{})
		tr.SetSink(prev)
		if err != nil {
			return exec, fmt.Errorf("stepfn: state %q: %w", st.Name, err)
		}
		ss := span.AddChild(&obs.Span{
			Name: st.Name, Kind: obs.KindState, Track: st.FunctionName,
			Start: cursor, Duration: res.Duration,
		})
		ss.SetAttr("function", st.FunctionName)
		ss.SetAttr("memory_mb", fmt.Sprintf("%d", res.MemoryMB))
		ss.SetAttr("cold", fmt.Sprintf("%t", res.ColdStart))
		ss.CostEvents = append(ss.CostEvents, bkt.Events()...)
		ss.Cost = bkt.Total()
		phaseCursor := cursor
		for _, ph := range res.Phases {
			ss.AddChild(&obs.Span{
				Name: ph.Name, Kind: obs.KindPhase, Track: st.FunctionName,
				Start: phaseCursor, Duration: ph.Duration,
			})
			phaseCursor += ph.Duration
		}
		cursor += res.Duration
		exec.Duration += res.Duration
		exec.Cost += res.Cost
		payload = res.Response
	}
	// Final transition to the terminal state.
	cursor = e.transition(exec, span, cursor)

	span.Duration = cursor
	exec.Output = payload
	exec.Trace = span
	root = span
	return exec, nil
}

// transition accounts one billed state transition and its span.
func (e *Engine) transition(exec *Execution, span *obs.Span, cursor time.Duration) time.Duration {
	exec.Transitions++
	exec.TransitionTime += e.TransitionDelay
	exec.Duration += e.TransitionDelay
	bkt := e.Tracer.NewBucket()
	prev := e.Tracer.SetSink(bkt)
	e.meter.Add("stepfn:transitions", pricing.StepFnTransition)
	e.Tracer.SetSink(prev)
	exec.Cost += pricing.StepFnTransition
	e.Metrics.Inc("stepfn_transitions_total", 1)
	ts := span.AddChild(&obs.Span{
		Name: "transition", Kind: obs.KindTransition, Track: "stepfn",
		Start: cursor, Duration: e.TransitionDelay,
	})
	ts.CostEvents = append(ts.CostEvents, bkt.Events()...)
	ts.Cost = bkt.Total()
	return cursor + e.TransitionDelay
}
