package stepfn

import (
	"strings"
	"testing"
	"time"

	"ampsinf/internal/cloud/billing"
	"ampsinf/internal/cloud/lambda"
	"ampsinf/internal/cloud/pricing"
	"ampsinf/internal/obs"
	"ampsinf/internal/perf"
)

func setup() (*Engine, *lambda.Platform, *billing.Meter) {
	meter := &billing.Meter{}
	pl := lambda.New(meter, perf.Default())
	return NewEngine(pl, meter), pl, meter
}

func appendHandler(tag string) lambda.Handler {
	return func(ctx *lambda.Context, payload []byte) ([]byte, error) {
		ctx.Advance("work", 100*time.Millisecond)
		return append(payload, []byte(tag)...), nil
	}
}

func TestRunChainsStates(t *testing.T) {
	eng, pl, meter := setup()
	for _, name := range []string{"a", "b", "c"} {
		if err := pl.CreateFunction(lambda.FunctionConfig{Name: name, MemoryMB: 512, Handler: appendHandler(name)}); err != nil {
			t.Fatal(err)
		}
	}
	m := Machine{Name: "wf", States: []State{
		{Name: "s1", FunctionName: "a"},
		{Name: "s2", FunctionName: "b"},
		{Name: "s3", FunctionName: "c"},
	}}
	exec, err := eng.Run(m, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if string(exec.Output) != "xabc" {
		t.Fatalf("output %q", exec.Output)
	}
	if exec.Transitions != 4 { // 3 states + terminal
		t.Fatalf("transitions %d", exec.Transitions)
	}
	wantTrans := 4 * pricing.StepFnTransitionDelay
	if exec.TransitionTime != wantTrans {
		t.Fatalf("transition time %v, want %v", exec.TransitionTime, wantTrans)
	}
	if exec.Duration <= exec.TransitionTime {
		t.Fatal("duration must include invocations")
	}
	if meter.Category("stepfn:transitions") != 4*pricing.StepFnTransition {
		t.Fatal("transition fees not metered")
	}
}

// The paper's footnote 2: a ten-state workflow spends ≈15 s in state
// transitions alone.
func TestTenStateTransitionOverheadMatchesFootnote(t *testing.T) {
	eng, pl, _ := setup()
	states := make([]State, 10)
	for i := range states {
		name := string(rune('a' + i))
		pl.CreateFunction(lambda.FunctionConfig{Name: name, MemoryMB: 512, Handler: appendHandler("")})
		states[i] = State{Name: name, FunctionName: name}
	}
	exec, err := eng.Run(Machine{Name: "ten", States: states}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sec := exec.TransitionTime.Seconds()
	if sec < 14 || sec > 18 {
		t.Fatalf("10-state transition overhead %.1fs, paper ≈15s", sec)
	}
}

func TestRunEmptyMachine(t *testing.T) {
	eng, _, _ := setup()
	if _, err := eng.Run(Machine{Name: "empty"}, nil); err == nil {
		t.Fatal("empty machine accepted")
	}
}

func TestRunPropagatesStateFailure(t *testing.T) {
	eng, pl, _ := setup()
	pl.CreateFunction(lambda.FunctionConfig{Name: "ok", MemoryMB: 512, Handler: appendHandler("o")})
	m := Machine{Name: "wf", States: []State{
		{Name: "s1", FunctionName: "ok"},
		{Name: "s2", FunctionName: "missing"},
	}}
	_, err := eng.Run(m, nil)
	if err == nil || !strings.Contains(err.Error(), "s2") {
		t.Fatalf("missing function not surfaced: %v", err)
	}
}

// A traced execution must produce a well-formed span tree whose summed
// per-span costs reproduce Execution.Cost within float tolerance (the
// engine accumulates Cost as transition-fee + res.Cost additions, so
// the fold orders differ by at most rounding).
func TestRunTraceCostAttribution(t *testing.T) {
	eng, pl, meter := setup()
	tr := obs.NewTracer()
	meter.SetObserver(tr.RecordCost)
	eng.Tracer = tr
	mx := obs.NewMetrics()
	eng.Metrics = mx
	for _, name := range []string{"a", "b"} {
		if err := pl.CreateFunction(lambda.FunctionConfig{Name: name, MemoryMB: 512, Handler: appendHandler(name)}); err != nil {
			t.Fatal(err)
		}
	}
	m := Machine{Name: "wf", States: []State{
		{Name: "s1", FunctionName: "a"},
		{Name: "s2", FunctionName: "b"},
	}}
	exec, err := eng.Run(m, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if exec.Trace == nil {
		t.Fatal("traced execution has nil Trace")
	}
	if err := obs.ValidateTree(exec.Trace); err != nil {
		t.Fatalf("span tree invalid: %v", err)
	}
	if exec.Trace.Duration != exec.Duration {
		t.Fatalf("root span %v != execution duration %v", exec.Trace.Duration, exec.Duration)
	}
	sum := obs.SumCosts(exec.Trace)
	if diff := sum - exec.Cost; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("span costs %.18f differ from execution cost %.18f", sum, exec.Cost)
	}
	states, transitions := 0, 0
	exec.Trace.Walk(func(s *obs.Span) {
		switch s.Kind {
		case obs.KindState:
			states++
		case obs.KindTransition:
			transitions++
		}
	})
	if states != 2 || transitions != 3 {
		t.Fatalf("trace has %d states / %d transitions, want 2 / 3", states, transitions)
	}
	if got := len(tr.Jobs()); got != 1 {
		t.Fatalf("tracer collected %d jobs, want 1", got)
	}
	if got := mx.Snapshot().Counters["stepfn_transitions_total"]; got != 3 {
		t.Fatalf("stepfn_transitions_total = %d, want 3", got)
	}
}
