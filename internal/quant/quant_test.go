package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ampsinf/internal/nn"
	"ampsinf/internal/nn/zoo"
	"ampsinf/internal/tensor"
)

func randTensor(rng *rand.Rand, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	for i := range t.Data() {
		t.Data()[i] = float32(rng.NormFloat64())
	}
	return t
}

func TestQuantizeRejectsBadBits(t *testing.T) {
	if _, err := Quantize(tensor.New(2), 5); err == nil {
		t.Fatal("5-bit quantization accepted")
	}
}

// Property: per-element reconstruction error is bounded by Scale/2 (plus
// float rounding), for both bit widths.
func TestQuantizationErrorBound(t *testing.T) {
	f := func(seed int64, useFourBit bool) bool {
		rng := rand.New(rand.NewSource(seed))
		bits := 8
		if useFourBit {
			bits = 4
		}
		orig := randTensor(rng, 3, 5, 2)
		q, err := Quantize(orig, bits)
		if err != nil {
			return false
		}
		back := q.Dequantize()
		bound := float64(q.Scale)/2 + 1e-5
		return tensor.MaxAbsDiff(orig, back) <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeConstantTensor(t *testing.T) {
	c := tensor.New(4)
	c.Fill(3.25)
	q, err := Quantize(c, 8)
	if err != nil {
		t.Fatal(err)
	}
	back := q.Dequantize()
	if tensor.MaxAbsDiff(c, back) > 1e-6 {
		t.Fatalf("constant tensor not preserved: %v", back.Data())
	}
}

func TestFourBitPacksTwoPerByte(t *testing.T) {
	x := randTensor(rand.New(rand.NewSource(1)), 7) // odd length
	q, _ := Quantize(x, 4)
	if len(q.Packed) != 4 {
		t.Fatalf("packed %d bytes for 7 elements, want 4", len(q.Packed))
	}
	if q.Dequantize().Elems() != 7 {
		t.Fatal("element count changed")
	}
}

func TestQuantizeWeightsRoundTrip(t *testing.T) {
	m := zoo.TinyCNN(0)
	w := nn.InitWeights(m, 9)
	qw, err := QuantizeWeights(m, w, 8)
	if err != nil {
		t.Fatal(err)
	}
	// 8-bit payload ≈ 1/4 of float32.
	if got, want := qw.TotalBytes(), m.WeightBytes()/4; got < want-16 || got > want+16 {
		t.Fatalf("quantized payload %d bytes, want ≈%d", got, want)
	}
	dw := DequantizeWeights(qw)
	if err := nn.CheckWeights(m, dw); err != nil {
		t.Fatalf("dequantized weights invalid: %v", err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := zoo.TinyCNN(0)
	w := nn.InitWeights(m, 9)
	for _, bits := range []int{8, 4} {
		qw, err := QuantizeWeights(m, w, bits)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := Encode(m, qw)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Decode(blob)
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		for name, qs := range qw {
			for i, q := range qs {
				b := back[name][i]
				if !q.Shape.Equal(b.Shape) || q.Bits != b.Bits || q.Min != b.Min || q.Scale != b.Scale {
					t.Fatalf("bits=%d: chunk %s[%d] metadata changed", bits, name, i)
				}
				if !tensor.AllClose(q.Dequantize(), b.Dequantize(), 0) {
					t.Fatalf("bits=%d: chunk %s[%d] data changed", bits, name, i)
				}
			}
		}
	}
}

func TestDecodeDetectsCorruption(t *testing.T) {
	m := zoo.TinyCNN(0)
	qw, _ := QuantizeWeights(m, nn.InitWeights(m, 9), 8)
	blob, _ := Encode(m, qw)
	bad := append([]byte(nil), blob...)
	bad[len(bad)/2] ^= 0xFF
	if _, err := Decode(bad); err == nil {
		t.Fatal("corrupted container accepted")
	}
	if _, err := Decode(blob[:len(blob)/2]); err == nil {
		t.Fatal("truncated container accepted")
	}
	if _, err := Decode([]byte("AMPX000000")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// End-to-end: a model served with dequantized 8-bit weights must stay
// close to the float model (small relative logit error on TinyCNN).
func TestQuantizedInferenceStaysClose(t *testing.T) {
	m := zoo.TinyCNN(0)
	w := nn.InitWeights(m, 3)
	qw, _ := QuantizeWeights(m, w, 8)
	dw := DequantizeWeights(qw)

	rng := rand.New(rand.NewSource(5))
	in := randTensor(rng, 1, 32, 32, 3)
	a, err := m.Forward(w, in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Forward(dw, in)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(a, b); d > 0.15 {
		t.Fatalf("8-bit quantization shifted softmax outputs by %v", d)
	}
}

func TestCompressionScale(t *testing.T) {
	if s := CompressionScale(8); math.Abs(s-0.27) > 1e-9 {
		t.Fatalf("8-bit scale %v", s)
	}
	if s := CompressionScale(4); math.Abs(s-0.145) > 1e-9 {
		t.Fatalf("4-bit scale %v", s)
	}
}
