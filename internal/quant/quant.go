// Package quant implements the weight quantization the paper names as
// future work (Sec. 5.4, citing Han et al.'s deep compression): before
// deployment, each parameter tensor is affinely quantized to 8 or 4 bits,
// shrinking a partition's deployment package 4–8× so that models whose
// single layers approach the platform's size limit (the paper's BERT/VGG
// concern) still fit. Functions dequantize on load; the serving path is
// unchanged.
package quant

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"ampsinf/internal/nn"
	"ampsinf/internal/tensor"
)

// Tensor is an affinely quantized tensor: value ≈ Scale·q + Min, with q
// an unsigned Bits-bit code packed little-endian into Packed.
type Tensor struct {
	Shape  tensor.Shape
	Bits   int // 8 or 4
	Min    float32
	Scale  float32
	Packed []byte
}

// levels returns the number of quantization codes.
func levels(bits int) int { return 1<<bits - 1 }

// Quantize converts t to a bits-bit quantized tensor.
func Quantize(t *tensor.Tensor, bits int) (*Tensor, error) {
	if bits != 8 && bits != 4 {
		return nil, fmt.Errorf("quant: unsupported bit width %d (want 8 or 4)", bits)
	}
	data := t.Data()
	mn, mx := float32(math.Inf(1)), float32(math.Inf(-1))
	for _, v := range data {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	if len(data) == 0 {
		mn, mx = 0, 0
	}
	scale := (mx - mn) / float32(levels(bits))
	if scale == 0 {
		scale = 1 // constant tensor; all codes zero
	}
	q := &Tensor{Shape: t.Shape().Clone(), Bits: bits, Min: mn, Scale: scale}
	switch bits {
	case 8:
		q.Packed = make([]byte, len(data))
		for i, v := range data {
			q.Packed[i] = byte(clampCode(v, mn, scale, 255))
		}
	case 4:
		q.Packed = make([]byte, (len(data)+1)/2)
		for i, v := range data {
			code := clampCode(v, mn, scale, 15)
			if i%2 == 0 {
				q.Packed[i/2] = byte(code)
			} else {
				q.Packed[i/2] |= byte(code << 4)
			}
		}
	}
	return q, nil
}

func clampCode(v, mn, scale float32, maxCode int) int {
	c := int(math.Round(float64((v - mn) / scale)))
	if c < 0 {
		c = 0
	}
	if c > maxCode {
		c = maxCode
	}
	return c
}

// Dequantize reconstructs a float tensor (lossy: error ≤ Scale/2 per
// element).
func (q *Tensor) Dequantize() *tensor.Tensor {
	n := q.Shape.Elems()
	data := make([]float32, n)
	switch q.Bits {
	case 8:
		for i := 0; i < n; i++ {
			data[i] = q.Min + q.Scale*float32(q.Packed[i])
		}
	case 4:
		for i := 0; i < n; i++ {
			b := q.Packed[i/2]
			code := b & 0x0F
			if i%2 == 1 {
				code = b >> 4
			}
			data[i] = q.Min + q.Scale*float32(code)
		}
	}
	return tensor.FromSlice(data, q.Shape...)
}

// Bytes returns the quantized payload size (codes only).
func (q *Tensor) Bytes() int64 { return int64(len(q.Packed)) }

// Weights maps layer name → quantized parameter tensors.
type Weights map[string][]*Tensor

// QuantizeWeights quantizes every parameter tensor of the model.
func QuantizeWeights(m *nn.Model, w nn.Weights, bits int) (Weights, error) {
	if err := nn.CheckWeights(m, w); err != nil {
		return nil, fmt.Errorf("quant: %w", err)
	}
	out := make(Weights, len(w))
	for name, ts := range w {
		qs := make([]*Tensor, len(ts))
		for i, t := range ts {
			q, err := Quantize(t, bits)
			if err != nil {
				return nil, fmt.Errorf("quant: layer %q tensor %d: %w", name, i, err)
			}
			qs[i] = q
		}
		out[name] = qs
	}
	return out, nil
}

// DequantizeWeights reconstructs float weights for serving.
func DequantizeWeights(qw Weights) nn.Weights {
	out := make(nn.Weights, len(qw))
	for name, qs := range qw {
		ts := make([]*tensor.Tensor, len(qs))
		for i, q := range qs {
			ts[i] = q.Dequantize()
		}
		out[name] = ts
	}
	return out
}

// TotalBytes sums the quantized payload across all tensors.
func (qw Weights) TotalBytes() int64 {
	var n int64
	for _, qs := range qw {
		for _, q := range qs {
			n += q.Bytes()
		}
	}
	return n
}

// Container layout ("AMPQ", version 1): per chunk, name, index, bits,
// min, scale, shape, packed codes, CRC-32.

var magic = [4]byte{'A', 'M', 'P', 'Q'}

const version = 1

// Encode serializes quantized weights for the model's layers in
// topological order.
func Encode(m *nn.Model, qw Weights) ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(magic[:])
	var hdr [6]byte
	binary.LittleEndian.PutUint16(hdr[:2], version)
	var nchunks uint32
	for _, l := range m.Layers {
		nchunks += uint32(len(qw[l.Name]))
	}
	binary.LittleEndian.PutUint32(hdr[2:], nchunks)
	buf.Write(hdr[:])
	for _, l := range m.Layers {
		for i, q := range qw[l.Name] {
			body := encodeChunk(l.Name, i, q)
			buf.Write(body)
			var crc [4]byte
			binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(body))
			buf.Write(crc[:])
		}
	}
	return buf.Bytes(), nil
}

func encodeChunk(name string, idx int, q *Tensor) []byte {
	body := make([]byte, 0, 2+len(name)+2+1+4+4+2+4*len(q.Shape)+len(q.Packed))
	body = binary.LittleEndian.AppendUint16(body, uint16(len(name)))
	body = append(body, name...)
	body = binary.LittleEndian.AppendUint16(body, uint16(idx))
	body = append(body, byte(q.Bits))
	body = binary.LittleEndian.AppendUint32(body, math.Float32bits(q.Min))
	body = binary.LittleEndian.AppendUint32(body, math.Float32bits(q.Scale))
	body = binary.LittleEndian.AppendUint16(body, uint16(len(q.Shape)))
	for _, d := range q.Shape {
		body = binary.LittleEndian.AppendUint32(body, uint32(d))
	}
	body = append(body, q.Packed...)
	return body
}

// Decode parses a quantized-weights container, verifying checksums.
func Decode(data []byte) (Weights, error) {
	if len(data) < 10 || !bytes.Equal(data[:4], magic[:]) {
		return nil, fmt.Errorf("quant: bad container magic")
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != version {
		return nil, fmt.Errorf("quant: unsupported version %d", v)
	}
	nchunks := binary.LittleEndian.Uint32(data[6:10])
	qw := make(Weights)
	off := 10
	for c := uint32(0); c < nchunks; c++ {
		name, idx, q, n, err := decodeChunk(data[off:])
		if err != nil {
			return nil, fmt.Errorf("quant: chunk %d: %w", c, err)
		}
		if int(idx) != len(qw[name]) {
			return nil, fmt.Errorf("quant: chunk %d for %q out of order", c, name)
		}
		qw[name] = append(qw[name], q)
		off += n
	}
	if off != len(data) {
		return nil, fmt.Errorf("quant: %d trailing bytes", len(data)-off)
	}
	return qw, nil
}

func decodeChunk(data []byte) (name string, idx uint16, q *Tensor, consumed int, err error) {
	need := func(n int) error {
		if len(data) < consumed+n {
			return fmt.Errorf("truncated (need %d bytes at %d)", n, consumed)
		}
		return nil
	}
	if err = need(2); err != nil {
		return
	}
	nameLen := int(binary.LittleEndian.Uint16(data[consumed:]))
	consumed += 2
	if err = need(nameLen + 2 + 1 + 4 + 4 + 2); err != nil {
		return
	}
	name = string(data[consumed : consumed+nameLen])
	consumed += nameLen
	idx = binary.LittleEndian.Uint16(data[consumed:])
	consumed += 2
	bits := int(data[consumed])
	consumed++
	if bits != 8 && bits != 4 {
		err = fmt.Errorf("bad bit width %d", bits)
		return
	}
	mn := math.Float32frombits(binary.LittleEndian.Uint32(data[consumed:]))
	consumed += 4
	scale := math.Float32frombits(binary.LittleEndian.Uint32(data[consumed:]))
	consumed += 4
	rank := int(binary.LittleEndian.Uint16(data[consumed:]))
	consumed += 2
	if err = need(4 * rank); err != nil {
		return
	}
	shape := make(tensor.Shape, rank)
	elems := 1
	for i := range shape {
		d := binary.LittleEndian.Uint32(data[consumed:])
		consumed += 4
		if d == 0 || d > 1<<24 {
			err = fmt.Errorf("implausible dimension %d", d)
			return
		}
		shape[i] = int(d)
		elems *= int(d)
	}
	packedLen := elems
	if bits == 4 {
		packedLen = (elems + 1) / 2
	}
	if err = need(packedLen + 4); err != nil {
		return
	}
	packed := make([]byte, packedLen)
	copy(packed, data[consumed:consumed+packedLen])
	consumed += packedLen
	wantCRC := binary.LittleEndian.Uint32(data[consumed:])
	if got := crc32.ChecksumIEEE(data[:consumed]); got != wantCRC {
		err = fmt.Errorf("checksum mismatch for %q", name)
		return
	}
	consumed += 4
	q = &Tensor{Shape: shape, Bits: bits, Min: mn, Scale: scale, Packed: packed}
	return
}

// CompressionScale returns the deployment-size factor a bits-bit
// quantization achieves relative to float32 (with ~2% container
// overhead), for the optimizer's constraint (4) accounting.
func CompressionScale(bits int) float64 {
	return float64(bits)/32 + 0.02
}
