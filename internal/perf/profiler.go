package perf

import (
	"time"

	"ampsinf/internal/nn"
)

// SpanProfiler answers ProfilePartition queries in O(1) by precomputing
// prefix sums (layers, FLOPs, weights) and a range-max table (peak
// activation) over the segment list. All aggregation is integer
// arithmetic, so every profile is bit-identical to the O(span) loop in
// ProfilePartition — a property the tests assert. The profiler is
// immutable after construction and safe for concurrent readers.
type SpanProfiler struct {
	segs     []nn.Segment
	prefix   *nn.SegmentPrefix
	inBytes0 int64
}

// NewSpanProfiler builds the prefix statistics for one model's segments.
func NewSpanProfiler(m *nn.Model, segs []nn.Segment) *SpanProfiler {
	return &SpanProfiler{
		segs:     segs,
		prefix:   nn.NewSegmentPrefix(segs),
		inBytes0: int64(m.InputShape.Elems()) * 4,
	}
}

// Profile aggregates the segment span [sLo, sHi) — the O(1) equivalent
// of ProfilePartition.
func (sp *SpanProfiler) Profile(sLo, sHi int) SegmentProfile {
	p := SegmentProfile{
		Layers:       sp.prefix.Layers(sLo, sHi),
		FLOPs:        sp.prefix.FLOPs(sLo, sHi),
		WeightsBytes: sp.prefix.Params(sLo, sHi) * 4,
		PeakActBytes: sp.prefix.MaxPeakAct(sLo, sHi),
	}
	if sLo == 0 {
		p.InBytes = sp.inBytes0
	} else {
		p.InBytes = sp.segs[sLo-1].OutBytes
	}
	p.OutBytes = sp.segs[sHi-1].OutBytes
	return p
}

// EndToEndEval evaluates EndToEndTime for one fixed partition profile
// across many memory blocks, hoisting the per-span invariants (working
// set, full-share work seconds) out of the per-block loop. Time(mem) is
// bit-identical to Params.EndToEndTime(mem, flops, weightsBytes): the
// hoisted subexpressions are pure functions of span-constant inputs, so
// reusing their values performs exactly the same float operations.
type EndToEndEval struct {
	p        Params
	ws       float64
	depsWork float64
	loadWork float64
	compWork float64
	base     time.Duration
}

// SpanEval precomputes the invariants for a partition of the given
// compute and weight footprint.
func (p Params) SpanEval(flops, weightsBytes int64) EndToEndEval {
	mb := float64(weightsBytes) / (1 << 20)
	return EndToEndEval{
		p:        p,
		ws:       p.WorkingSetMB(weightsBytes),
		depsWork: p.DepsMB * p.DepsInitSecPerMB,
		loadWork: mb * p.WeightsLoadSecPerMB,
		compWork: float64(flops) / (p.PeakGFLOPS * 1e9),
		base:     p.ColdStartBase + p.InvokeOverhead,
	}
}

// Time returns the cold-start end-to-end serving time at memMB,
// excluding network transfers (as EndToEndTime does).
func (e *EndToEndEval) Time(memMB int) time.Duration {
	share := e.p.Share(memMB)
	pen := e.p.Penalty(memMB, e.ws)
	scale := func(work float64) time.Duration {
		return time.Duration(work / share * pen * float64(time.Second))
	}
	return e.base + scale(e.depsWork) + scale(e.loadWork) + scale(e.compWork)
}
