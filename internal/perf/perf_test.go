package perf

import (
	"testing"
	"time"

	"ampsinf/internal/cloud/pricing"
	"ampsinf/internal/nn/zoo"
)

func TestShareMonotoneAndSaturating(t *testing.T) {
	p := Default()
	prev := 0.0
	for mb := 128; mb <= 3008; mb += 64 {
		s := p.Share(mb)
		if s <= 0 || s > 1 {
			t.Fatalf("share(%d) = %v out of (0,1]", mb, s)
		}
		if s < prev {
			t.Fatalf("share not monotone at %d", mb)
		}
		prev = s
	}
	if p.Share(1792) != 1 || p.Share(3008) != 1 {
		t.Fatal("share must saturate at 1792")
	}
}

func TestPenaltyBounds(t *testing.T) {
	p := Default()
	if p.Penalty(1024, 0) != 1 {
		t.Fatal("zero working set must have no penalty")
	}
	if p.Penalty(512, 200) <= p.Penalty(1024, 200) {
		t.Fatal("penalty must shrink with memory")
	}
	if p.Penalty(512, 200) < 1 {
		t.Fatal("penalty below 1")
	}
}

// Calibration: MobileNet single-lambda end-to-end times must track the
// paper's Table 2 within 15%.
func TestMobileNetTable2Calibration(t *testing.T) {
	m := zoo.MobileNet(0)
	p := Default()
	flops := m.TotalFLOPs()
	wb := m.WeightBytes()
	want := map[int]float64{512: 22.03, 1024: 10.65, 1536: 7.52, 2048: 6.38, 3008: 6.32}
	for mem, sec := range want {
		got := p.EndToEndTime(mem, flops, wb).Seconds()
		ratio := got / sec
		if ratio < 0.85 || ratio > 1.15 {
			t.Errorf("MobileNet @%dMB = %.2fs, paper %.2fs (ratio %.2f)", mem, got, sec, ratio)
		}
	}
}

// The cost curve over Table 2's memory choices must be U-shaped with the
// minimum at 1024 MB, as the paper reports.
func TestMobileNetCostMinimumAt1024(t *testing.T) {
	m := zoo.MobileNet(0)
	p := Default()
	cost := func(mem int) float64 {
		d := p.EndToEndTime(mem, m.TotalFLOPs(), m.WeightBytes())
		return pricing.LambdaExecutionCost(mem, d)
	}
	best, bestCost := 0, 1e9
	for _, mem := range []int{512, 1024, 1536, 2048, 3008} {
		if c := cost(mem); c < bestCost {
			best, bestCost = mem, c
		}
	}
	if best != 1024 {
		t.Fatalf("cheapest Table-2 memory = %d, paper says 1024", best)
	}
}

func TestCompletionTimeMonotoneInMemory(t *testing.T) {
	m := zoo.MobileNet(0)
	p := Default()
	prev := time.Duration(1<<62 - 1)
	for _, mem := range pricing.MemoryBlocks() {
		d := p.EndToEndTime(mem, m.TotalFLOPs(), m.WeightBytes())
		if d > prev {
			t.Fatalf("completion time increased at %d MB", mem)
		}
		prev = d
	}
}

func TestMinFeasibleMemory(t *testing.T) {
	p := Default()
	// A 98 MB partition needs ≥ (169+1+40+98)*1.1 ≈ 339 MB → block ≥ 384.
	got := p.MinFeasibleMemoryMB(98<<20, 128, 64)
	if got < 320 || got > 448 {
		t.Fatalf("min feasible memory = %d, want ≈384", got)
	}
	if (got-128)%64 != 0 {
		t.Fatalf("min feasible %d not on the block grid", got)
	}
	// Tiny partitions still need the dependency working set.
	if small := p.MinFeasibleMemoryMB(0, 128, 64); small < 192 {
		t.Fatalf("empty partition min memory = %d, must cover deps", small)
	}
}

func TestProfilePartitionConservation(t *testing.T) {
	m := zoo.TinyCNN(0)
	segs := m.Segments()
	whole := ProfilePartition(m, segs, 0, len(segs))
	if whole.FLOPs != m.TotalFLOPs() {
		t.Errorf("whole-model profile flops %d != %d", whole.FLOPs, m.TotalFLOPs())
	}
	if whole.WeightsBytes != m.WeightBytes() {
		t.Errorf("whole-model profile weights %d != %d", whole.WeightsBytes, m.WeightBytes())
	}
	if whole.InBytes != int64(m.InputShape.Elems())*4 {
		t.Errorf("input bytes %d", whole.InBytes)
	}
	// Split in two: flops and weights must sum; boundary sizes must chain.
	mid := len(segs) / 2
	a := ProfilePartition(m, segs, 0, mid)
	b := ProfilePartition(m, segs, mid, len(segs))
	if a.FLOPs+b.FLOPs != whole.FLOPs {
		t.Error("split flops do not sum")
	}
	if a.WeightsBytes+b.WeightsBytes != whole.WeightsBytes {
		t.Error("split weights do not sum")
	}
	if a.OutBytes != b.InBytes {
		t.Errorf("boundary mismatch: out %d vs in %d", a.OutBytes, b.InBytes)
	}
	if b.OutBytes != whole.OutBytes {
		t.Error("final output size changed by split")
	}
}

func TestDeployAndTmpBytes(t *testing.T) {
	s := SegmentProfile{WeightsBytes: 50 << 20, InBytes: 2 << 20, PeakActBytes: 8 << 20}
	if got := s.DeployBytes(1 << 20); got != 52<<20 {
		t.Fatalf("deploy bytes = %d", got)
	}
	if got := s.TmpBytes(); got != 60<<20 {
		t.Fatalf("tmp bytes = %d", got)
	}
}

func TestTimesScaleWithMemory(t *testing.T) {
	p := Default()
	// Doubling memory below saturation should roughly halve each phase.
	lo := p.ComputeTime(512, 1e9, 10<<20)
	hi := p.ComputeTime(1024, 1e9, 10<<20)
	ratio := float64(lo) / float64(hi)
	if ratio < 1.8 || ratio > 2.3 {
		t.Fatalf("512→1024 compute ratio %.2f, want ≈2", ratio)
	}
	if p.DepsInitTime(512, 0) <= p.DepsInitTime(3008, 0) {
		t.Fatal("deps init must shrink with memory")
	}
}

func TestBatchFLOPs(t *testing.T) {
	p := Default()
	if got := p.BatchFLOPs(1000, 1); got != 1000 {
		t.Fatalf("batch of 1 = %d", got)
	}
	// Batch of 5 at 0.25 marginal: 1 + 4×0.25 = 2× the single cost.
	if got := p.BatchFLOPs(1000, 5); got != 2000 {
		t.Fatalf("batch of 5 = %d, want 2000", got)
	}
	if got := p.BatchFLOPs(1000, 0); got != 1000 {
		t.Fatalf("batch of 0 = %d", got)
	}
	zero := Default()
	zero.BatchMarginal = 0
	// Unset marginal degrades to linear scaling.
	if got := zero.BatchFLOPs(1000, 3); got != 3000 {
		t.Fatalf("linear fallback = %d", got)
	}
}

func TestEndToEndTimeComposition(t *testing.T) {
	p := Default()
	total := p.EndToEndTime(1024, 1e9, 10<<20)
	parts := p.ColdStartBase + p.InvokeOverhead +
		p.DepsInitTime(1024, 10<<20) + p.WeightsLoadTime(1024, 10<<20) +
		p.ComputeTime(1024, 1e9, 10<<20)
	if total != parts {
		t.Fatalf("composition mismatch: %v vs %v", total, parts)
	}
}
