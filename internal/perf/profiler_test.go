package perf

import (
	"testing"

	"ampsinf/internal/nn/zoo"
)

// The fast planner path substitutes SpanProfiler.Profile and
// EndToEndEval.Time for ProfilePartition and EndToEndTime; plan
// byte-identity rests on these being exactly equal, so the tests demand
// bit-for-bit equality, not approximation.

func TestSpanProfilerMatchesProfilePartition(t *testing.T) {
	for _, name := range []string{"tinycnn", "linearnet", "mobilenet", "resnet50", "inceptionv3", "bertbase"} {
		m, err := zoo.Build(name, 0)
		if err != nil {
			t.Fatal(err)
		}
		segs := m.Segments()
		sp := NewSpanProfiler(m, segs)
		for a := 0; a < len(segs); a++ {
			for b := a + 1; b <= len(segs); b++ {
				want := ProfilePartition(m, segs, a, b)
				if got := sp.Profile(a, b); got != want {
					t.Fatalf("%s span [%d,%d): %+v != %+v", name, a, b, got, want)
				}
			}
		}
	}
}

func TestSpanEvalMatchesEndToEndTime(t *testing.T) {
	p := Default()
	flopsCases := []int64{0, 1, 55_000_000, 4_100_000_000, 22_000_000_000}
	weightCases := []int64{0, 1 << 10, 16 << 20, 98 << 20, 300 << 20}
	for _, flops := range flopsCases {
		for _, weights := range weightCases {
			e := p.SpanEval(flops, weights)
			for mem := 128; mem <= 10240; mem += 7 {
				want := p.EndToEndTime(mem, flops, weights)
				if got := e.Time(mem); got != want {
					t.Fatalf("flops=%d weights=%d mem=%d: %v != %v", flops, weights, mem, got, want)
				}
			}
		}
	}
}

func TestSpanEvalNonDefaultParams(t *testing.T) {
	// Perturbed parameters exercise the saturation boundary and a zero
	// pressure coefficient.
	p := Default()
	p.SaturationMB = 2048
	p.MemPressureAlpha = 0
	p.PeakGFLOPS = 1.25
	e := p.SpanEval(3_000_000_000, 40<<20)
	for _, mem := range []int{128, 1024, 2047, 2048, 2049, 3008} {
		if got, want := e.Time(mem), p.EndToEndTime(mem, 3_000_000_000, 40<<20); got != want {
			t.Fatalf("mem=%d: %v != %v", mem, got, want)
		}
	}
}
