// Package perf is the calibrated performance model of serverless
// inference: how a Lambda function's memory allocation translates into
// dependency-initialization, weight-loading and compute time. AWS Lambda
// allocates CPU share proportionally to memory, saturating around
// 1792 MB; small allocations additionally suffer memory pressure. The
// default parameters are calibrated against the paper's own MobileNet
// measurements (Table 2: 22.03 s @512 MB … 6.32 s @3008 MB), which makes
// the Fig 1 cost curve reproduce its published U shape with the cost
// minimum at 1024 MB.
package perf

import (
	"time"

	"ampsinf/internal/nn"
)

// Params defines the performance model.
type Params struct {
	// PeakGFLOPS is the inference compute rate at full CPU share. The
	// paper served models through Python/Keras, whose effective rate is
	// far below hardware peak.
	PeakGFLOPS float64
	// DepsInitSecPerMB is full-share CPU work to unpack and import one MB
	// of framework dependencies (the 169 MB Keras/TensorFlow layer).
	DepsInitSecPerMB float64
	// WeightsLoadSecPerMB is full-share work to read and deserialize one
	// MB of model weights (HDF5 parsing).
	WeightsLoadSecPerMB float64
	// ColdStartBase is the platform's container/sandbox start latency.
	ColdStartBase time.Duration
	// InvokeOverhead is the fixed per-invocation runtime overhead (c0).
	InvokeOverhead time.Duration
	// MemPressureAlpha scales the slowdown from a working set that is
	// large relative to the allocation: penalty = 1 + α·ws/mem.
	MemPressureAlpha float64
	// SaturationMB is the allocation beyond which CPU share stops
	// growing (1 full vCPU ≈ 1792 MB on 2020 Lambda).
	SaturationMB int
	// DepsMB is the size of the framework dependency layer (D).
	DepsMB float64
	// HandlerMB is the size of the serving handler code (F).
	HandlerMB float64
	// RuntimeOverheadMB is baseline interpreter memory counted into the
	// working set for the pressure term.
	RuntimeOverheadMB float64
	// BatchMarginal is the marginal compute cost of each additional image
	// in a batch, relative to the first (vectorized frameworks amortize
	// per-layer overheads: a batch of n costs 1 + (n-1)·BatchMarginal).
	BatchMarginal float64
}

// Default returns the Table-2-calibrated parameters.
func Default() Params {
	return Params{
		PeakGFLOPS:          0.55,
		DepsInitSecPerMB:    0.01183, // 169 MB → ≈2.0 full-share seconds
		WeightsLoadSecPerMB: 0.080,
		ColdStartBase:       150 * time.Millisecond,
		InvokeOverhead:      580 * time.Millisecond,
		MemPressureAlpha:    0.341,
		SaturationMB:        1792,
		DepsMB:              169,
		HandlerMB:           1,
		RuntimeOverheadMB:   40,
		BatchMarginal:       0.25,
	}
}

// BatchFLOPs returns the effective compute of serving a batch of n
// images whose single-image compute is flops.
func (p Params) BatchFLOPs(flops int64, n int) int64 {
	if n <= 1 {
		return flops
	}
	marginal := p.BatchMarginal
	if marginal <= 0 {
		marginal = 1
	}
	return int64(float64(flops) * (1 + float64(n-1)*marginal))
}

// Share returns the CPU share granted to an allocation of memMB,
// in (0, 1], proportional below the saturation point.
func (p Params) Share(memMB int) float64 {
	if memMB <= 0 {
		return 1.0 / float64(p.SaturationMB)
	}
	if memMB >= p.SaturationMB {
		return 1
	}
	return float64(memMB) / float64(p.SaturationMB)
}

// Penalty returns the memory-pressure slowdown multiplier (≥1) for a
// working set of wsMB under an allocation of memMB.
func (p Params) Penalty(memMB int, wsMB float64) float64 {
	if memMB <= 0 || wsMB <= 0 {
		return 1
	}
	return 1 + p.MemPressureAlpha*wsMB/float64(memMB)
}

// scale converts full-share work seconds into wall seconds at memMB.
func (p Params) scale(workSec float64, memMB int, wsMB float64) time.Duration {
	wall := workSec / p.Share(memMB) * p.Penalty(memMB, wsMB)
	return time.Duration(wall * float64(time.Second))
}

// WorkingSetMB estimates the resident working set of a function serving
// weightsBytes of model parameters.
func (p Params) WorkingSetMB(weightsBytes int64) float64 {
	return p.DepsMB + p.HandlerMB + p.RuntimeOverheadMB + float64(weightsBytes)/(1<<20)
}

// DepsInitTime returns the cold-start dependency initialization time at
// memMB, for a function whose partition weighs weightsBytes.
func (p Params) DepsInitTime(memMB int, weightsBytes int64) time.Duration {
	return p.scale(p.DepsMB*p.DepsInitSecPerMB, memMB, p.WorkingSetMB(weightsBytes))
}

// WeightsLoadTime returns the model/weights deserialization time.
func (p Params) WeightsLoadTime(memMB int, weightsBytes int64) time.Duration {
	mb := float64(weightsBytes) / (1 << 20)
	return p.scale(mb*p.WeightsLoadSecPerMB, memMB, p.WorkingSetMB(weightsBytes))
}

// ComputeTime returns the forward-pass time for flops of work on a
// function holding weightsBytes of parameters.
func (p Params) ComputeTime(memMB int, flops int64, weightsBytes int64) time.Duration {
	work := float64(flops) / (p.PeakGFLOPS * 1e9)
	return p.scale(work, memMB, p.WorkingSetMB(weightsBytes))
}

// EndToEndTime composes the cold-start single-invocation serving time of
// a partition: platform start + overhead + dependency init + weight load
// + compute (network transfer time is added separately by the caller,
// which knows the staging store).
func (p Params) EndToEndTime(memMB int, flops, weightsBytes int64) time.Duration {
	return p.ColdStartBase + p.InvokeOverhead +
		p.DepsInitTime(memMB, weightsBytes) +
		p.WeightsLoadTime(memMB, weightsBytes) +
		p.ComputeTime(memMB, flops, weightsBytes)
}

// MinFeasibleMemoryMB implements the paper's constraint (7): the smallest
// memory block that can hold the runtime working set with headroom,
// given block base M and increment β. Smaller blocks are infeasible and
// pruned from the decision space.
func (p Params) MinFeasibleMemoryMB(weightsBytes int64, baseMB, stepMB int) int {
	need := p.WorkingSetMB(weightsBytes) * 1.10 // +10% heap headroom
	mb := baseMB
	for float64(mb) < need {
		mb += stepMB
	}
	return mb
}

// SegmentProfile carries the per-partition quantities the paper's
// formulation consumes for one candidate partition (a consecutive run of
// model segments deployed on one lambda).
type SegmentProfile struct {
	Layers       int   // y_i: number of NN layers in the partition
	FLOPs        int64 // Σ d·y: compute workload
	WeightsBytes int64 // partition weights (drives e_i)
	InBytes      int64 // p_{i-1}: input activation size
	OutBytes     int64 // p_i: output activation size
	PeakActBytes int64 // largest intermediate activation (drives z_i)
}

// DeployBytes returns the unzipped deployment footprint of the partition:
// weights + model description + handler (the paper's y·e + F; the
// dependency layer D is accounted separately since it ships as a
// function layer).
func (s SegmentProfile) DeployBytes(descBytes int64) int64 {
	return s.WeightsBytes + descBytes + int64(1<<20) // 1 MB handler
}

// TmpBytes returns the partition's temporary-storage footprint during
// execution (the paper's y·z + p_{i-1}): weights staged in /tmp, the
// input activation, and the largest intermediate.
func (s SegmentProfile) TmpBytes() int64 {
	return s.WeightsBytes + s.InBytes + s.PeakActBytes
}

// ProfilePartition aggregates a consecutive segment span [sLo, sHi) of a
// model into a SegmentProfile.
func ProfilePartition(m *nn.Model, segs []nn.Segment, sLo, sHi int) SegmentProfile {
	var p SegmentProfile
	for i := sLo; i < sHi; i++ {
		s := segs[i]
		p.Layers += s.Layers
		p.FLOPs += s.FLOPs
		p.WeightsBytes += s.WeightBytes()
		if s.PeakActBytes > p.PeakActBytes {
			p.PeakActBytes = s.PeakActBytes
		}
	}
	if sLo == 0 {
		p.InBytes = int64(m.InputShape.Elems()) * 4
	} else {
		p.InBytes = segs[sLo-1].OutBytes
	}
	p.OutBytes = segs[sHi-1].OutBytes
	return p
}
