package sim

import (
	"encoding/binary"
	"sort"
	"testing"
	"time"
)

// FuzzHeapPopOrder feeds randomized (time, class, seq) insertions —
// decoded from the raw fuzz bytes — and asserts the three properties
// that make the heap a deterministic total order: pop order equals the
// reference sort, a second heap fed the reverse insertion order
// replays the identical sequence, and the heap invariant survives
// every push and pop.
func FuzzHeapPopOrder(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 1, 0, 0, 0, 0, 0, 1, 2})
	// Colliding instants and classes: only Seq separates them.
	f.Add([]byte{
		5, 0, 3, 0, 5, 0, 3, 0, 5, 0, 3, 0,
		5, 0, 3, 0, 5, 0, 3, 0, 5, 0, 3, 0,
	})
	f.Add([]byte{255, 255, 255, 255, 0, 0, 0, 0, 128, 7, 1, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		const rec = 4 // 2 bytes time, 1 class, 1 seq-salt per event
		n := len(data) / rec
		if n > 512 {
			n = 512
		}
		evs := make([]Event, n)
		for i := 0; i < n; i++ {
			b := data[i*rec:]
			at := time.Duration(binary.LittleEndian.Uint16(b)) * time.Microsecond
			// Seq mixes a salt byte with the index so the fuzzer can force
			// near-collisions while the order stays total (unique Seq per
			// (At, Class) is the caller contract the schedulers uphold).
			evs[i] = Event{At: at, Class: b[2] % 4, Seq: uint64(b[3])<<32 | uint64(i), ID: int32(i)}
		}

		var h, rev Heap
		for _, e := range evs {
			h.Push(e)
			if !h.invariantOK() {
				t.Fatalf("heap invariant broken after push %+v", e)
			}
		}
		for i := len(evs) - 1; i >= 0; i-- {
			rev.Push(evs[i])
		}

		want := append([]Event(nil), evs...)
		sort.Slice(want, func(i, j int) bool { return want[i].Before(want[j]) })
		for i, w := range want {
			got, ok := h.Pop()
			if !ok {
				t.Fatalf("heap empty at pop %d of %d", i, len(want))
			}
			if got != w {
				t.Fatalf("pop %d: got %+v want %+v", i, got, w)
			}
			if !h.invariantOK() {
				t.Fatalf("heap invariant broken after pop %d", i)
			}
			replay, ok := rev.Pop()
			if !ok || replay != got {
				t.Fatalf("reverse-insertion replay diverged at %d: %+v vs %+v", i, replay, got)
			}
		}
		if h.Len() != 0 || rev.Len() != 0 {
			t.Fatalf("heaps not drained: %d, %d", h.Len(), rev.Len())
		}
	})
}
