package sim

// Slab is a free-list allocator handing out stable int32 handles —
// exactly the shape Event.ID wants. Freed slots are recycled LIFO, so
// once a run's peak population has been reached, Alloc/Free cycles
// allocate nothing.
//
// Backing storage is chunked: slots live in fixed-size blocks that
// never move, so pointers stay valid across growth and capacity costs
// one allocation per slabChunkSize slots instead of one per slot.
// That keeps a fresh slab's growth phase off the per-request
// allocation budget even when peak population tracks the run length
// (an overloaded queue parks a backlog proportional to arrivals).
//
// Alloc does not zero recycled slots: callers reset the fields they
// use (which lets them keep grown slices, e.g. a backoff-wait list,
// across reuses instead of reallocating them).
type Slab[T any] struct {
	chunks [][]T
	free   []int32
	len    int32 // slots materialized so far (high-water mark)
}

const (
	slabChunkShift = 10 // 1024 slots per chunk
	slabChunkSize  = 1 << slabChunkShift
	slabChunkMask  = slabChunkSize - 1
)

// Alloc returns a slot handle and its value. The value may hold a
// previous occupant's state; reset what you use.
func (s *Slab[T]) Alloc() (int32, *T) {
	if n := len(s.free); n > 0 {
		id := s.free[n-1]
		s.free = s.free[:n-1]
		return id, s.Get(id)
	}
	id := s.len
	if int(id)>>slabChunkShift == len(s.chunks) {
		s.chunks = append(s.chunks, make([]T, slabChunkSize))
	}
	s.len++
	return id, s.Get(id)
}

// Get returns the value at a live handle.
func (s *Slab[T]) Get(id int32) *T {
	return &s.chunks[id>>slabChunkShift][id&slabChunkMask]
}

// Free recycles a handle. The caller must not use the handle (or the
// pointer obtained from it) afterwards until Alloc hands it out again.
func (s *Slab[T]) Free(id int32) { s.free = append(s.free, id) }

// Live returns the number of allocated (not freed) slots.
func (s *Slab[T]) Live() int { return int(s.len) - len(s.free) }
