package sim

// Slab is a free-list allocator handing out stable int32 handles —
// exactly the shape Event.ID wants. Freed slots are recycled LIFO, so
// once a run's peak population has been reached, Alloc/Free cycles
// allocate nothing.
//
// Alloc does not zero recycled slots: callers reset the fields they
// use (which lets them keep grown slices, e.g. a backoff-wait list,
// across reuses instead of reallocating them).
type Slab[T any] struct {
	items []*T
	free  []int32
}

// Alloc returns a slot handle and its value. The value may hold a
// previous occupant's state; reset what you use.
func (s *Slab[T]) Alloc() (int32, *T) {
	if n := len(s.free); n > 0 {
		id := s.free[n-1]
		s.free = s.free[:n-1]
		return id, s.items[id]
	}
	id := int32(len(s.items))
	s.items = append(s.items, new(T))
	return id, s.items[id]
}

// Get returns the value at a live handle.
func (s *Slab[T]) Get(id int32) *T { return s.items[id] }

// Free recycles a handle. The caller must not use the handle (or the
// pointer obtained from it) afterwards until Alloc hands it out again.
func (s *Slab[T]) Free(id int32) { s.free = append(s.free, id) }

// Live returns the number of allocated (not freed) slots.
func (s *Slab[T]) Live() int { return len(s.items) - len(s.free) }
