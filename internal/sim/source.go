package sim

import (
	"math/rand"
	"time"
)

// Source yields a workload's arrival offsets one at a time, in
// non-decreasing order, without ever materializing the full trace: a
// million-request Poisson source is one rng and two counters, not an
// 8 MB slice. The generator sources below are bit-compatible with the
// corresponding internal/workload slice generators — same seed, same
// offsets — which the cross-package equality tests pin down.
type Source interface {
	// Next returns the next arrival offset, or ok=false when the trace
	// is exhausted.
	Next() (time.Duration, bool)
	// Remaining is how many arrivals Next has not yet yielded.
	Remaining() int
}

// maxOffset caps arrival offsets so float accumulation can never
// overflow the time.Duration range (mirrors workload.maxOffset).
const maxOffset = time.Duration(1) << 62

// SliceSource adapts an already-materialized arrival trace.
type SliceSource struct {
	arrivals []time.Duration
	i        int
}

// NewSlice wraps a materialized arrival trace as a Source.
func NewSlice(arrivals []time.Duration) *SliceSource {
	return &SliceSource{arrivals: arrivals}
}

// Next implements Source.
func (s *SliceSource) Next() (time.Duration, bool) {
	if s.i >= len(s.arrivals) {
		return 0, false
	}
	a := s.arrivals[s.i]
	s.i++
	return a, true
}

// Remaining implements Source.
func (s *SliceSource) Remaining() int { return len(s.arrivals) - s.i }

// PoissonSource streams n arrival offsets with exponentially
// distributed inter-arrival gaps at ratePerSec requests per second,
// deterministic in seed — bit-compatible with
// workload.PoissonArrivals(n, ratePerSec, seed).
type PoissonSource struct {
	rng  *rand.Rand
	rate float64
	left int
	t    float64
}

// NewPoisson creates a streaming Poisson arrival source. Non-positive
// (or NaN) rates fall back to one request per second, as in
// workload.PoissonArrivals.
func NewPoisson(n int, ratePerSec float64, seed int64) *PoissonSource {
	if n < 0 {
		n = 0
	}
	if !(ratePerSec > 0) { // also catches NaN
		ratePerSec = 1
	}
	return &PoissonSource{rng: rand.New(rand.NewSource(seed)), rate: ratePerSec, left: n}
}

// Next implements Source.
func (s *PoissonSource) Next() (time.Duration, bool) {
	if s.left <= 0 {
		return 0, false
	}
	s.left--
	s.t += s.rng.ExpFloat64() / s.rate
	if ns := s.t * float64(time.Second); ns < float64(maxOffset) {
		return time.Duration(ns), true
	}
	return maxOffset, true
}

// Remaining implements Source.
func (s *PoissonSource) Remaining() int { return s.left }

// UniformSource streams n arrivals spread evenly across a window —
// bit-compatible with workload.UniformArrivals(n, window).
type UniformSource struct {
	step time.Duration
	n, i int
}

// NewUniform creates a streaming uniform arrival source. A
// non-positive window degenerates to n simultaneous arrivals at zero.
func NewUniform(n int, window time.Duration) *UniformSource {
	if n <= 0 {
		return &UniformSource{}
	}
	if window < 0 {
		window = 0
	}
	return &UniformSource{step: window / time.Duration(n), n: n}
}

// Next implements Source.
func (s *UniformSource) Next() (time.Duration, bool) {
	if s.i >= s.n {
		return 0, false
	}
	a := s.step * time.Duration(s.i)
	s.i++
	return a, true
}

// Remaining implements Source.
func (s *UniformSource) Remaining() int { return s.n - s.i }

// BurstSource streams bursts of burstSize simultaneous requests every
// gap, n requests total — bit-compatible with
// workload.BurstArrivals(n, burstSize, gap).
type BurstSource struct {
	gap   time.Duration
	burst int
	n, i  int
}

// NewBursts creates a streaming burst arrival source. Non-positive
// burst sizes behave as 1; negative gaps as 0.
func NewBursts(n, burstSize int, gap time.Duration) *BurstSource {
	if n <= 0 {
		return &BurstSource{burst: 1}
	}
	if burstSize <= 0 {
		burstSize = 1
	}
	if gap < 0 {
		gap = 0
	}
	if bursts := (n - 1) / burstSize; bursts > 0 && gap > maxOffset/time.Duration(bursts) {
		gap = maxOffset / time.Duration(bursts)
	}
	return &BurstSource{gap: gap, burst: burstSize, n: n}
}

// Next implements Source.
func (s *BurstSource) Next() (time.Duration, bool) {
	if s.i >= s.n {
		return 0, false
	}
	a := s.gap * time.Duration(s.i/s.burst)
	s.i++
	return a, true
}

// Remaining implements Source.
func (s *BurstSource) Remaining() int { return s.n - s.i }
