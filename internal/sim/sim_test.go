package sim

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// refSort is the reference total order: a plain sort under the same
// (At, Class, Seq) comparison the heap promises to pop in.
func refSort(evs []Event) []Event {
	out := append([]Event(nil), evs...)
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}

func randomEvents(rng *rand.Rand, n int) []Event {
	evs := make([]Event, n)
	for i := range evs {
		evs[i] = Event{
			// Small ranges force heavy At/Class collisions so the Seq
			// tie-break actually decides most comparisons.
			At:    time.Duration(rng.Intn(8)) * time.Millisecond,
			Class: uint8(rng.Intn(3)),
			Seq:   uint64(i),
			ID:    int32(rng.Intn(1000)),
		}
	}
	return evs
}

// TestHeapPopOrderMatchesSort: for random insertion orders, pop order
// equals the reference sort — the heap realizes the documented total
// order exactly.
func TestHeapPopOrderMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		evs := randomEvents(rng, rng.Intn(60))
		var h Heap
		for _, e := range evs {
			h.Push(e)
			if !h.invariantOK() {
				t.Fatalf("trial %d: heap invariant broken after push %+v", trial, e)
			}
		}
		want := refSort(evs)
		for i, w := range want {
			got, ok := h.Pop()
			if !ok {
				t.Fatalf("trial %d: heap empty at pop %d", trial, i)
			}
			if got != w {
				t.Fatalf("trial %d pop %d: got %+v want %+v", trial, i, got, w)
			}
			if !h.invariantOK() {
				t.Fatalf("trial %d: heap invariant broken after pop %d", trial, i)
			}
		}
		if _, ok := h.Pop(); ok {
			t.Fatalf("trial %d: heap not empty after draining", trial)
		}
	}
}

// TestHeapStableReplay: pushing the same events in two different orders
// pops the identical sequence — insertion order never leaks into the
// pop order.
func TestHeapStableReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		evs := randomEvents(rng, 50)
		shuffled := append([]Event(nil), evs...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		var h1, h2 Heap
		for _, e := range evs {
			h1.Push(e)
		}
		for _, e := range shuffled {
			h2.Push(e)
		}
		for h1.Len() > 0 {
			a, _ := h1.Pop()
			b, _ := h2.Pop()
			if a != b {
				t.Fatalf("trial %d: replay diverged: %+v vs %+v", trial, a, b)
			}
		}
		if h2.Len() != 0 {
			t.Fatalf("trial %d: second heap not drained", trial)
		}
	}
}

// TestHeapInterleavedPushPop exercises the realistic event-loop shape:
// pops interleaved with pushes of later events, asserting the popped
// times never retreat and the invariant holds throughout.
func TestHeapInterleavedPushPop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var h Heap
	var last Event
	popped := 0
	for i := 0; i < 2000; i++ {
		if h.Len() == 0 || rng.Intn(3) > 0 {
			at := last.At + time.Duration(rng.Intn(5))*time.Millisecond
			h.Push(Event{At: at, Class: uint8(rng.Intn(3)), Seq: uint64(i)})
		} else {
			e, _ := h.Pop()
			// Simulated time never retreats (classes may still reorder
			// within one instant when later pushes land there).
			if popped > 0 && e.At < last.At {
				t.Fatalf("pop %d retreated: %+v before %+v", popped, e, last)
			}
			last = e
			popped++
		}
		if !h.invariantOK() {
			t.Fatalf("step %d: heap invariant broken", i)
		}
	}
}

func TestHeapPeekResetGrow(t *testing.T) {
	var h Heap
	if _, ok := h.Peek(); ok {
		t.Fatal("peek on empty heap succeeded")
	}
	h.Grow(64)
	h.Push(Event{At: 5})
	h.Push(Event{At: 3})
	if e, ok := h.Peek(); !ok || e.At != 3 {
		t.Fatalf("peek = %+v, %v; want At=3", e, ok)
	}
	if h.Len() != 2 {
		t.Fatalf("len = %d, want 2", h.Len())
	}
	h.Reset()
	if h.Len() != 0 {
		t.Fatalf("len after reset = %d", h.Len())
	}
	if _, ok := h.Pop(); ok {
		t.Fatal("pop after reset succeeded")
	}
}

// TestHeapSteadyStateAllocs: once the heap has reached its peak
// population, push/pop cycles allocate nothing — the property that
// keeps the million-request loop off the garbage collector.
func TestHeapSteadyStateAllocs(t *testing.T) {
	var h Heap
	for i := 0; i < 128; i++ {
		h.Push(Event{At: time.Duration(i), Seq: uint64(i)})
	}
	seq := uint64(128)
	allocs := testing.AllocsPerRun(1000, func() {
		e, _ := h.Pop()
		e.At += 100
		e.Seq = seq
		seq++
		h.Push(e)
	})
	if allocs != 0 {
		t.Fatalf("steady-state push/pop allocated %.1f per op, want 0", allocs)
	}
}

// TestSlabSteadyStateAllocs: alloc/free cycles at peak population are
// allocation-free, and handles recycle LIFO.
func TestSlabSteadyStateAllocs(t *testing.T) {
	var s Slab[[4]int64]
	ids := make([]int32, 64)
	for i := range ids {
		ids[i], _ = s.Alloc()
	}
	for _, id := range ids {
		s.Free(id)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		id, p := s.Alloc()
		p[0] = int64(id)
		s.Free(id)
	})
	if allocs != 0 {
		t.Fatalf("steady-state alloc/free allocated %.1f per op, want 0", allocs)
	}
}

func TestSlabReuse(t *testing.T) {
	var s Slab[int]
	a, pa := s.Alloc()
	*pa = 7
	b, pb := s.Alloc()
	*pb = 9
	if a == b {
		t.Fatalf("distinct allocs share handle %d", a)
	}
	if s.Live() != 2 {
		t.Fatalf("live = %d, want 2", s.Live())
	}
	s.Free(a)
	c, pc := s.Alloc()
	if c != a {
		t.Fatalf("freed handle %d not recycled (got %d)", a, c)
	}
	if *pc != 7 {
		t.Fatalf("recycled slot zeroed: got %d, want prior occupant 7", *pc)
	}
	if *s.Get(b) != 9 {
		t.Fatalf("unrelated slot clobbered: %d", *s.Get(b))
	}
}

func TestClockMonotonic(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock reads %v", c.Now())
	}
	if !c.AdvanceTo(5 * time.Second) {
		t.Fatal("advance to 5s reported no movement")
	}
	if c.AdvanceTo(3 * time.Second) {
		t.Fatal("clock retreated")
	}
	if c.Now() != 5*time.Second {
		t.Fatalf("now = %v, want 5s", c.Now())
	}
}
