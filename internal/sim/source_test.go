package sim

import (
	"testing"
	"time"

	"ampsinf/internal/workload"
)

// drain materializes a source, checking Remaining counts down exactly.
func drain(t *testing.T, s Source, wantN int) []time.Duration {
	t.Helper()
	out := make([]time.Duration, 0, wantN)
	for {
		if got := s.Remaining(); got != wantN-len(out) {
			t.Fatalf("Remaining = %d after %d yields, want %d", got, len(out), wantN-len(out))
		}
		a, ok := s.Next()
		if !ok {
			break
		}
		out = append(out, a)
	}
	if len(out) != wantN {
		t.Fatalf("source yielded %d arrivals, want %d", len(out), wantN)
	}
	if _, ok := s.Next(); ok {
		t.Fatal("exhausted source yielded again")
	}
	return out
}

func equalTraces(t *testing.T, name string, got, want []time.Duration) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d arrivals, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: arrival %d = %v, want %v (bit-compatibility broken)", name, i, got[i], want[i])
		}
	}
}

// TestPoissonSourceMatchesWorkload pins the streaming Poisson source
// bit-identical to the slice generator for every (n, rate, seed) probed
// — including the NaN/zero-rate fallback and the overflow clamp.
func TestPoissonSourceMatchesWorkload(t *testing.T) {
	cases := []struct {
		n    int
		rate float64
		seed int64
	}{
		{1, 1, 1}, {100, 0.5, 7}, {1000, 250, 42}, {17, 1e9, 3},
		{50, 0, 9},          // fallback rate
		{10, 5e-324, 11},    // overflow clamp territory
		{256, 12.25, -1234}, // negative seed
	}
	for _, c := range cases {
		want := workload.PoissonArrivals(c.n, c.rate, c.seed)
		got := drain(t, NewPoisson(c.n, c.rate, c.seed), c.n)
		equalTraces(t, "poisson", got, want)
	}
}

func TestUniformSourceMatchesWorkload(t *testing.T) {
	for _, c := range []struct {
		n      int
		window time.Duration
	}{{1, time.Second}, {64, 10 * time.Second}, {7, 0}, {13, -5}, {100, time.Duration(1) << 61}} {
		want := workload.UniformArrivals(c.n, c.window)
		got := drain(t, NewUniform(c.n, c.window), c.n)
		equalTraces(t, "uniform", got, want)
	}
}

func TestBurstSourceMatchesWorkload(t *testing.T) {
	for _, c := range []struct {
		n, burst int
		gap      time.Duration
	}{{12, 4, time.Second}, {1, 1, 0}, {30, 7, 250 * time.Millisecond}, {9, 0, -3}, {40, 3, time.Duration(1) << 61}} {
		want := workload.BurstArrivals(c.n, c.burst, c.gap)
		got := drain(t, NewBursts(c.n, c.burst, c.gap), c.n)
		equalTraces(t, "bursts", got, want)
	}
}

func TestSliceSource(t *testing.T) {
	want := []time.Duration{0, time.Second, time.Second, 3 * time.Second}
	got := drain(t, NewSlice(want), len(want))
	equalTraces(t, "slice", got, want)
	if got := drain(t, NewSlice(nil), 0); len(got) != 0 {
		t.Fatalf("nil slice yielded %d", len(got))
	}
}

func TestEmptySources(t *testing.T) {
	for name, s := range map[string]Source{
		"poisson": NewPoisson(0, 1, 1),
		"uniform": NewUniform(0, time.Second),
		"bursts":  NewBursts(0, 3, time.Second),
	} {
		if _, ok := s.Next(); ok {
			t.Fatalf("%s: empty source yielded", name)
		}
		if s.Remaining() != 0 {
			t.Fatalf("%s: Remaining = %d", name, s.Remaining())
		}
	}
}

// TestPoissonSourceStreamsLazily: a million-request source costs O(1)
// memory up front — Remaining reports the full count without any
// backing slice having been built.
func TestPoissonSourceStreamsLazily(t *testing.T) {
	allocs := testing.AllocsPerRun(10, func() {
		s := NewPoisson(1_000_000, 100, 1)
		if s.Remaining() != 1_000_000 {
			t.Fatal("wrong count")
		}
		s.Next()
	})
	// One rng + one source struct + rng internals; the point is it is
	// constant, not O(n).
	if allocs > 16 {
		t.Fatalf("constructing a 1M source allocated %.0f objects", allocs)
	}
}
