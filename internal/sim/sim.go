// Package sim is the unified discrete-event core under the serving
// schedulers and the lambda platform clock: a single binary event heap
// with a deterministic (time, class, sequence) total order, slab/free-
// list allocators so steady-state event processing allocates nothing,
// a monotonic simulated clock, and generator-driven arrival sources
// that never materialize a full trace in memory.
//
// Everything here is deliberately value-oriented and dependency-free:
// an Event is 24 bytes of plain data, the heap is a flat slice, and no
// method ever allocates once capacity has been reached. That is what
// lets a million-request Poisson trace run through the serving
// scheduler in seconds while staying byte-identical across runs (the
// determinism argument is spelled out in DESIGN.md §14).
package sim

import "time"

// Event is one scheduled occurrence on the simulated timeline. Events
// are ordered by (At, Class, Seq): time first, then class priority
// (lower classes win ties so e.g. stage completions settle before new
// admissions at the same instant), then an insertion sequence that
// makes the order total — two events never compare equal, so heap pop
// order is fully deterministic regardless of insertion order.
//
// ID is an opaque payload handle (typically a Slab slot) that does not
// participate in the ordering.
type Event struct {
	// At is the simulated instant the event fires.
	At time.Duration
	// Seq is the deterministic tie-breaker of last resort (admission
	// order, request index, …). It must be unique within a Class at one
	// instant for the order to be total.
	Seq uint64
	// ID is a caller-defined payload handle; not part of the order.
	ID int32
	// Class is the priority band at equal instants (lower fires first).
	Class uint8
}

// Before reports whether e fires strictly before o in the
// (At, Class, Seq) total order.
func (e Event) Before(o Event) bool {
	if e.At != o.At {
		return e.At < o.At
	}
	if e.Class != o.Class {
		return e.Class < o.Class
	}
	return e.Seq < o.Seq
}

// Heap is a binary min-heap of events under the (At, Class, Seq)
// order. The zero value is an empty heap ready for use. Push reuses
// the slice's capacity, so once a heap has grown to a run's peak
// population, steady-state push/pop cycles allocate nothing.
type Heap struct {
	ev []Event
}

// Len returns the number of queued events.
func (h *Heap) Len() int { return len(h.ev) }

// Grow pre-sizes the heap's backing slice for at least n events.
func (h *Heap) Grow(n int) {
	if cap(h.ev) < n {
		ev := make([]Event, len(h.ev), n)
		copy(ev, h.ev)
		h.ev = ev
	}
}

// Reset empties the heap, keeping its capacity for reuse.
func (h *Heap) Reset() { h.ev = h.ev[:0] }

// Push inserts an event.
func (h *Heap) Push(e Event) {
	h.ev = append(h.ev, e)
	// Sift up.
	i := len(h.ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.ev[i].Before(h.ev[parent]) {
			break
		}
		h.ev[i], h.ev[parent] = h.ev[parent], h.ev[i]
		i = parent
	}
}

// Peek returns the earliest event without removing it.
func (h *Heap) Peek() (Event, bool) {
	if len(h.ev) == 0 {
		return Event{}, false
	}
	return h.ev[0], true
}

// Pop removes and returns the earliest event.
func (h *Heap) Pop() (Event, bool) {
	n := len(h.ev)
	if n == 0 {
		return Event{}, false
	}
	top := h.ev[0]
	n--
	h.ev[0] = h.ev[n]
	h.ev = h.ev[:n]
	// Sift down.
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		min := l
		if r := l + 1; r < n && h.ev[r].Before(h.ev[l]) {
			min = r
		}
		if !h.ev[min].Before(h.ev[i]) {
			break
		}
		h.ev[i], h.ev[min] = h.ev[min], h.ev[i]
		i = min
	}
	return top, true
}

// invariantOK reports whether every parent fires no later than its
// children — the heap property under the (At, Class, Seq) order. Test
// hook; O(n).
func (h *Heap) invariantOK() bool {
	for i := 1; i < len(h.ev); i++ {
		if h.ev[i].Before(h.ev[(i-1)/2]) {
			return false
		}
	}
	return true
}

// Clock is the monotonic simulated clock the event loops share: it
// only moves forward, and only when a popped event says so. The zero
// value reads time zero.
type Clock struct {
	now time.Duration
}

// Now returns the current simulated instant.
func (c *Clock) Now() time.Duration { return c.now }

// AdvanceTo moves the clock forward to t; earlier instants are ignored
// (the clock never retreats). It reports whether the clock moved.
func (c *Clock) AdvanceTo(t time.Duration) bool {
	if t > c.now {
		c.now = t
		return true
	}
	return false
}
