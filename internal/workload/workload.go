// Package workload generates deterministic inference workloads: synthetic
// images shaped for a model's input and batched request sets, standing in
// for the paper's .pkl image files.
package workload

import (
	"math/rand"

	"ampsinf/internal/nn"
	"ampsinf/internal/tensor"
)

// Image synthesizes one input image for the model with pixel values in
// [0, 1), deterministic in seed.
func Image(m *nn.Model, seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	in := tensor.New(m.InputShape...)
	data := in.Data()
	for i := range data {
		data[i] = float32(rng.Float64())
	}
	return in
}

// Images synthesizes n distinct images, deterministic in seed.
func Images(m *nn.Model, n int, seed int64) []*tensor.Tensor {
	out := make([]*tensor.Tensor, n)
	for i := range out {
		out[i] = Image(m, seed+int64(i)*7919)
	}
	return out
}

// Batches splits n images into consecutive batches of size batchSize
// (the last batch may be smaller).
func Batches(m *nn.Model, n, batchSize int, seed int64) [][]*tensor.Tensor {
	imgs := Images(m, n, seed)
	var out [][]*tensor.Tensor
	for lo := 0; lo < n; lo += batchSize {
		hi := lo + batchSize
		if hi > n {
			hi = n
		}
		out = append(out, imgs[lo:hi])
	}
	return out
}
