package workload

import (
	"testing"
	"time"

	"ampsinf/internal/nn/zoo"
	"ampsinf/internal/tensor"
)

func TestImageShapeAndDeterminism(t *testing.T) {
	m := zoo.TinyCNN(0)
	a := Image(m, 5)
	b := Image(m, 5)
	if !a.Shape().Equal(m.InputShape) {
		t.Fatalf("image shape %v", a.Shape())
	}
	if !tensor.AllClose(a, b, 0) {
		t.Fatal("same seed produced different images")
	}
	c := Image(m, 6)
	if tensor.AllClose(a, c, 0) {
		t.Fatal("different seeds produced identical images")
	}
	for _, v := range a.Data() {
		if v < 0 || v >= 1 {
			t.Fatalf("pixel %v outside [0,1)", v)
		}
	}
}

func TestImagesDistinct(t *testing.T) {
	m := zoo.TinyCNN(0)
	imgs := Images(m, 4, 1)
	if len(imgs) != 4 {
		t.Fatalf("%d images", len(imgs))
	}
	for i := 1; i < len(imgs); i++ {
		if tensor.AllClose(imgs[0], imgs[i], 0) {
			t.Fatalf("image %d duplicates image 0", i)
		}
	}
}

func TestBatches(t *testing.T) {
	m := zoo.TinyCNN(0)
	bs := Batches(m, 7, 3, 1)
	if len(bs) != 3 || len(bs[0]) != 3 || len(bs[2]) != 1 {
		t.Fatalf("batch sizes %d/%d/%d", len(bs[0]), len(bs[1]), len(bs[2]))
	}
}

func TestPoissonArrivals(t *testing.T) {
	a := PoissonArrivals(100, 2, 9)
	if len(a) != 100 {
		t.Fatalf("%d arrivals", len(a))
	}
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			t.Fatal("arrivals not sorted")
		}
	}
	// Mean inter-arrival ≈ 0.5 s at rate 2/s (loose bound).
	mean := a[len(a)-1].Seconds() / float64(len(a))
	if mean < 0.3 || mean > 0.8 {
		t.Fatalf("mean inter-arrival %.2fs, want ≈0.5", mean)
	}
	b := PoissonArrivals(100, 2, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("arrivals not deterministic in seed")
		}
	}
	if PoissonArrivals(0, 2, 1) != nil {
		t.Fatal("n=0 should return nil")
	}
}

func TestUniformAndBurstArrivals(t *testing.T) {
	u := UniformArrivals(4, 4*time.Second)
	want := []time.Duration{0, time.Second, 2 * time.Second, 3 * time.Second}
	for i := range u {
		if u[i] != want[i] {
			t.Fatalf("uniform arrivals %v", u)
		}
	}
	b := BurstArrivals(6, 3, time.Second)
	if b[0] != 0 || b[2] != 0 || b[3] != time.Second || b[5] != time.Second {
		t.Fatalf("burst arrivals %v", b)
	}
}

func TestPercentile(t *testing.T) {
	ds := []time.Duration{4, 1, 3, 2, 5}
	if got := Percentile(ds, 50); got != 3 {
		t.Fatalf("p50 = %v", got)
	}
	if got := Percentile(ds, 100); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(nil, 95); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
	// Input must not be reordered.
	if ds[0] != 4 {
		t.Fatal("Percentile mutated its input")
	}
}
