package workload

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

// maxOffset caps arrival offsets so float accumulation can never
// overflow the time.Duration range (keeping every trace non-negative
// and sorted even at degenerate rates like 5e-324 requests/second).
const maxOffset = time.Duration(1) << 62

// PoissonArrivals generates n arrival offsets from time zero with
// exponentially distributed inter-arrival gaps at the given rate
// (requests per second), deterministic in seed. Offsets are returned in
// non-decreasing order. Non-positive (or NaN) rates fall back to one
// request per second.
func PoissonArrivals(n int, ratePerSec float64, seed int64) []time.Duration {
	if n <= 0 {
		return nil
	}
	if !(ratePerSec > 0) { // also catches NaN
		ratePerSec = 1
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]time.Duration, n)
	t := 0.0
	for i := range out {
		t += rng.ExpFloat64() / ratePerSec
		if ns := t * float64(time.Second); ns < float64(maxOffset) {
			out[i] = time.Duration(ns)
		} else {
			out[i] = maxOffset
		}
	}
	return out
}

// UniformArrivals spreads n arrivals evenly across the window. A
// non-positive window degenerates to n simultaneous arrivals at zero.
func UniformArrivals(n int, window time.Duration) []time.Duration {
	if n <= 0 {
		return nil
	}
	if window < 0 {
		window = 0
	}
	// Stepping by window/n (instead of multiplying window by i) keeps
	// every offset within [0, window] without int64 overflow.
	step := window / time.Duration(n)
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = step * time.Duration(i)
	}
	return out
}

// BurstArrivals produces bursts of burstSize simultaneous requests every
// gap, n requests total. Non-positive burst sizes behave as 1; negative
// gaps as 0.
func BurstArrivals(n, burstSize int, gap time.Duration) []time.Duration {
	if n <= 0 {
		return nil
	}
	if burstSize <= 0 {
		burstSize = 1
	}
	if gap < 0 {
		gap = 0
	}
	bursts := (n - 1) / burstSize
	if bursts > 0 && gap > maxOffset/time.Duration(bursts) {
		gap = maxOffset / time.Duration(bursts)
	}
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = gap * time.Duration(i/burstSize)
	}
	return out
}

// Percentile returns the p-th percentile (0 < p ≤ 100) of durations,
// using nearest-rank on a sorted copy.
func Percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
