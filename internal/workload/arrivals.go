package workload

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

// PoissonArrivals generates n arrival offsets from time zero with
// exponentially distributed inter-arrival gaps at the given rate
// (requests per second), deterministic in seed. Offsets are returned in
// non-decreasing order.
func PoissonArrivals(n int, ratePerSec float64, seed int64) []time.Duration {
	if n <= 0 {
		return nil
	}
	if ratePerSec <= 0 {
		ratePerSec = 1
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]time.Duration, n)
	t := 0.0
	for i := range out {
		t += rng.ExpFloat64() / ratePerSec
		out[i] = time.Duration(t * float64(time.Second))
	}
	return out
}

// UniformArrivals spreads n arrivals evenly across the window.
func UniformArrivals(n int, window time.Duration) []time.Duration {
	if n <= 0 {
		return nil
	}
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = window * time.Duration(i) / time.Duration(n)
	}
	return out
}

// BurstArrivals produces bursts of burstSize simultaneous requests every
// gap, n requests total.
func BurstArrivals(n, burstSize int, gap time.Duration) []time.Duration {
	if n <= 0 {
		return nil
	}
	if burstSize <= 0 {
		burstSize = 1
	}
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = gap * time.Duration(i/burstSize)
	}
	return out
}

// Percentile returns the p-th percentile (0 < p ≤ 100) of durations,
// using nearest-rank on a sorted copy.
func Percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
