package workload

import (
	"encoding/binary"
	"math"
	"testing"
	"time"
)

// decodeDurations turns fuzz bytes into durations, 8 bytes apiece.
func decodeDurations(data []byte) []time.Duration {
	ds := make([]time.Duration, 0, len(data)/8)
	for len(data) >= 8 {
		ds = append(ds, time.Duration(int64(binary.LittleEndian.Uint64(data))))
		data = data[8:]
	}
	return ds
}

// FuzzPercentile checks Percentile's contract on arbitrary inputs: it
// never panics, returns 0 on an empty set and a member of the set
// otherwise, and is monotone in p.
func FuzzPercentile(f *testing.F) {
	f.Add([]byte{}, 50.0, 95.0)
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0}, 0.0, 100.0)
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255, 7, 0, 0, 0, 0, 0, 0, 0}, -5.0, 200.0)
	f.Add([]byte{42, 0, 0, 0, 0, 0, 0, 0}, math.NaN(), math.Inf(1))
	f.Fuzz(func(t *testing.T, data []byte, p, q float64) {
		ds := decodeDurations(data)
		vp := Percentile(ds, p)
		vq := Percentile(ds, q)
		if len(ds) == 0 {
			if vp != 0 || vq != 0 {
				t.Fatalf("percentile of empty set = %v, %v", vp, vq)
			}
			return
		}
		member := func(v time.Duration) bool {
			for _, d := range ds {
				if d == v {
					return true
				}
			}
			return false
		}
		if !member(vp) || !member(vq) {
			t.Fatalf("percentile %v / %v not drawn from the set %v", vp, vq, ds)
		}
		if !math.IsNaN(p) && !math.IsNaN(q) && p <= q && vp > vq {
			t.Fatalf("Percentile not monotone: p%.3g=%v > p%.3g=%v", p, vp, q, vq)
		}
	})
}

// FuzzArrivals checks every arrival generator on arbitrary (including
// degenerate) parameters: no panics, exact lengths, and non-negative
// sorted offsets — the preconditions serving schedulers rely on.
func FuzzArrivals(f *testing.F) {
	f.Add(10, 5.0, int64(1), int64(time.Second), 3, int64(time.Millisecond))
	f.Add(0, 0.0, int64(0), int64(0), 0, int64(0))
	f.Add(100, math.NaN(), int64(7), int64(-time.Hour), -4, int64(-time.Second))
	f.Add(17, 5e-324, int64(3), int64(math.MaxInt64), 1, int64(math.MaxInt64))
	f.Add(33, math.Inf(1), int64(-9), int64(42), 1000000, int64(1))
	f.Fuzz(func(t *testing.T, n int, rate float64, seed int64, windowNs int64, burst int, gapNs int64) {
		if n > 4096 {
			n = 4096 // bound allocation, not behaviour
		}
		check := func(kind string, got []time.Duration) {
			if n <= 0 {
				if got != nil {
					t.Fatalf("%s: n=%d produced %d offsets", kind, n, len(got))
				}
				return
			}
			if len(got) != n {
				t.Fatalf("%s: %d offsets for n=%d", kind, len(got), n)
			}
			for i, d := range got {
				if d < 0 {
					t.Fatalf("%s: negative offset %v at %d", kind, d, i)
				}
				if i > 0 && d < got[i-1] {
					t.Fatalf("%s: unsorted at %d: %v < %v", kind, i, d, got[i-1])
				}
			}
		}
		check("poisson", PoissonArrivals(n, rate, seed))
		check("uniform", UniformArrivals(n, time.Duration(windowNs)))
		check("burst", BurstArrivals(n, burst, time.Duration(gapNs)))
	})
}
