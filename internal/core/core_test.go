package core

import (
	"math/rand"
	"testing"
	"time"

	"ampsinf/internal/nn"
	"ampsinf/internal/nn/zoo"
	"ampsinf/internal/tensor"
)

func randomInput(m *nn.Model, seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	in := tensor.New(m.InputShape...)
	for i := range in.Data() {
		in.Data()[i] = float32(rng.Float64())
	}
	return in
}

func submitTiny(t *testing.T, opts SubmitOptions) (*Framework, *Service, *nn.Model, nn.Weights) {
	t.Helper()
	fw := NewFramework(Options{})
	m := zoo.TinyCNN(0)
	w := nn.InitWeights(m, 3)
	svc, err := fw.Submit(m, w, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return fw, svc, m, w
}

func TestSubmitAndInfer(t *testing.T) {
	_, svc, m, w := submitTiny(t, SubmitOptions{})
	in := randomInput(m, 1)
	rep, err := svc.Infer(in)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := m.Forward(w, in)
	if !tensor.AllClose(want, rep.Output, 0) {
		t.Fatal("service prediction differs from direct forward pass")
	}
	if rep.Completion <= 0 || rep.Cost <= 0 {
		t.Fatalf("degenerate report: %v / %v", rep.Completion, rep.Cost)
	}
	if svc.PlanningTime <= 0 {
		t.Fatal("planning time not recorded")
	}
}

func TestSubmitRejectsNilAndInvalid(t *testing.T) {
	fw := NewFramework(Options{})
	if _, err := fw.Submit(nil, nil, SubmitOptions{}); err == nil {
		t.Fatal("nil model accepted")
	}
	m := zoo.TinyCNN(0)
	if _, err := fw.Submit(m, nn.Weights{}, SubmitOptions{}); err == nil {
		t.Fatal("empty weights accepted")
	}
}

func TestServiceRespectsSLO(t *testing.T) {
	// First learn the cost-optimal time, then demand a modestly faster
	// deployment and verify the plan honors it.
	_, base, _, _ := submitTiny(t, SubmitOptions{NamePrefix: "base"})
	slo := time.Duration(float64(base.Plan.EstTime) * 0.95)
	fw := NewFramework(Options{})
	m := zoo.TinyCNN(0)
	svc, err := fw.Submit(m, nn.InitWeights(m, 3), SubmitOptions{SLO: slo})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if !svc.Plan.MeetsSLO {
		t.Fatalf("SLO %v not met (plan %v)", slo, svc.Plan.EstTime)
	}
	if svc.Plan.EstTime > slo {
		t.Fatalf("plan time %v over SLO %v", svc.Plan.EstTime, slo)
	}
}

func TestBreakdown(t *testing.T) {
	_, svc, m, _ := submitTiny(t, SubmitOptions{MaxLayersPerPartition: 4})
	rep, err := svc.Infer(randomInput(m, 5))
	if err != nil {
		t.Fatal(err)
	}
	load, predict := Breakdown(rep)
	if load <= 0 || predict <= 0 {
		t.Fatalf("breakdown %v / %v", load, predict)
	}
	// Load + predict must be bounded by the summed active time.
	var active time.Duration
	for _, lr := range rep.PerLambda {
		active += lr.Active
	}
	if load+predict > active {
		t.Fatalf("breakdown %v exceeds active %v", load+predict, active)
	}
}

func TestColdStartResetsContainers(t *testing.T) {
	_, svc, m, _ := submitTiny(t, SubmitOptions{})
	in := randomInput(m, 6)
	first, _ := svc.Infer(in)
	warm, _ := svc.Infer(in)
	if warm.Completion >= first.Completion {
		t.Fatal("warm inference not faster")
	}
	svc.ColdStart()
	cold, _ := svc.Infer(in)
	if cold.Completion <= warm.Completion {
		t.Fatal("ColdStart did not reset containers")
	}
}

func TestBatchAPIs(t *testing.T) {
	_, svc, m, _ := submitTiny(t, SubmitOptions{})
	inputs := []*tensor.Tensor{randomInput(m, 7), randomInput(m, 8)}
	seq, err := svc.InferBatchSequential(inputs)
	if err != nil {
		t.Fatal(err)
	}
	par, err := svc.InferBatchParallel(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if par.Completion >= seq.Completion {
		t.Fatal("parallel batch not faster than sequential")
	}
	one, err := svc.InferBatched(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if one.Output.Shape()[0] != 2 {
		t.Fatalf("batched output shape %v", one.Output.Shape())
	}
}

func TestMeterAccumulatesAcrossJobs(t *testing.T) {
	fw, svc, m, _ := submitTiny(t, SubmitOptions{})
	before := fw.Meter().Total()
	if _, err := svc.Infer(randomInput(m, 9)); err != nil {
		t.Fatal(err)
	}
	if fw.Meter().Total() <= before {
		t.Fatal("meter did not accumulate")
	}
}
