package core

import (
	"testing"
	"time"

	"ampsinf/internal/nn"
	"ampsinf/internal/nn/zoo"
	"ampsinf/internal/obs"
	"ampsinf/internal/serving"
	"ampsinf/internal/tensor"
	"ampsinf/internal/workload"
)

func TestSubmitCoPlansBatch(t *testing.T) {
	_, svc, _, _ := submitTiny(t, SubmitOptions{SkipCompute: true})
	if svc.BatchPlan == nil {
		t.Fatal("submission produced no batch co-plan")
	}
	if len(svc.BatchPlan.Options) == 0 {
		t.Fatal("batch co-plan has no options")
	}
	if svc.BatchPlan.Chosen < 1 {
		t.Fatalf("co-plan chose %d", svc.BatchPlan.Chosen)
	}
	one := svc.BatchPlan.Option(1)
	if one == nil {
		t.Fatal("co-plan lacks the batch-1 option")
	}
	if one.EstTime != svc.Plan.EstTime || one.EstCost != svc.Plan.EstCost {
		t.Fatalf("batch-1 option (%v, %v) diverges from plan (%v, %v)",
			one.EstTime, one.EstCost, svc.Plan.EstTime, svc.Plan.EstCost)
	}
}

func TestServiceServeDefaultsAndClamps(t *testing.T) {
	fw := NewFramework(Options{Trace: obs.NewTracer()})
	m := zoo.TinyCNN(0)
	svc, err := fw.Submit(m, nn.InitWeights(m, 3), SubmitOptions{
		SkipCompute: true,
		Pipeline:    serving.PipelinePolicy{Depth: 3},
		Batch:       serving.BatchPolicy{MaxBatch: 4, Window: 2 * time.Second, JitterSeed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	fw.Platform().SetAccountConcurrency(4 * svc.Partitions())
	n := 6
	ins := make([]*tensor.Tensor, n)
	for i := range ins {
		ins[i] = randomInput(m, int64(i+1))
	}
	arrivals := workload.PoissonArrivals(n, 2, 7)
	rep, err := svc.Serve(ins, arrivals, serving.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "pipelined+batched" {
		t.Fatalf("submission defaults not applied: mode %q", rep.Mode)
	}
	if rep.Completed != n {
		t.Fatalf("completed %d of %d", rep.Completed, n)
	}
	if got, want := obs.SumCostsAll(rep.Traces()), fw.Meter().Total(); got != want {
		t.Fatalf("trace costs %v != meter %v", got, want)
	}
}

func TestServiceServeAutoBatch(t *testing.T) {
	fw, svc, m, _ := submitTiny(t, SubmitOptions{SkipCompute: true})
	fw.Platform().SetAccountConcurrency(4 * svc.Partitions())
	n := 4
	ins := make([]*tensor.Tensor, n)
	for i := range ins {
		ins[i] = randomInput(m, int64(i+1))
	}
	// MaxBatch -1 asks for the co-plan's recommended size; with no SLO
	// the co-plan favors batching, so simultaneous arrivals coalesce.
	rep, err := svc.Serve(ins, make([]time.Duration, n), serving.Config{
		Batch: serving.BatchPolicy{MaxBatch: -1, Window: time.Second, JitterSeed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != n {
		t.Fatalf("completed %d of %d", rep.Completed, n)
	}
	if svc.BatchPlan.Chosen > 1 && rep.Mode != "batched" {
		t.Fatalf("auto batch did not batch: mode %q (chosen %d)", rep.Mode, svc.BatchPlan.Chosen)
	}
}
