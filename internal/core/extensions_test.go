package core

import (
	"testing"

	"ampsinf/internal/cloud/billing"
	"ampsinf/internal/cloud/lambda"
	"ampsinf/internal/cloud/pricing"
	"ampsinf/internal/nn"
	"ampsinf/internal/nn/zoo"
	"ampsinf/internal/perf"
	"ampsinf/internal/quant"
	"ampsinf/internal/tensor"
)

// VGG16 (528 MB of weights; fc1 alone ≈392 MB) cannot be deployed under
// the 2020 limits with float32 weights — and becomes servable with 4-bit
// quantization, the paper's future-work answer to outsized layers.
func TestVGG16ServableOnlyWithQuantization(t *testing.T) {
	m := zoo.VGG16(0)
	w := nn.InitWeights(m, 1)
	fw := NewFramework(Options{})

	if _, err := fw.Submit(m, w, SubmitOptions{SkipCompute: true}); err == nil {
		t.Fatal("float32 VGG16 deployed under the 250 MB limit")
	}
	if _, err := fw.Submit(m, w, SubmitOptions{SkipCompute: true, QuantizeBits: 8}); err == nil {
		t.Fatal("8-bit VGG16 should still exceed the limit (fc1 ≈ 98 MB + 169 MB deps + overhead)")
	}
	svc, err := fw.Submit(m, w, SubmitOptions{SkipCompute: true, QuantizeBits: 4})
	if err != nil {
		t.Fatalf("4-bit VGG16 not servable: %v", err)
	}
	defer svc.Close()
	// At 4 bits the whole 528 MB model compresses to ≈77 MB, which just
	// fits a single function next to the 169 MB dependency layer.
	if svc.Partitions() < 1 {
		t.Fatalf("VGG16 deployed on %d partitions", svc.Partitions())
	}
	if _, err := svc.Infer(randomInput(m, 3)); err != nil {
		t.Fatalf("quantized VGG16 serving failed: %v", err)
	}
}

// A quantized deployment must produce exactly the prediction of a direct
// forward pass through the dequantized weights, and nearly the float
// model's prediction.
func TestQuantizedPipelineCorrectness(t *testing.T) {
	m := zoo.TinyCNN(0)
	w := nn.InitWeights(m, 3)
	fw := NewFramework(Options{})
	svc, err := fw.Submit(m, w, SubmitOptions{QuantizeBits: 8, MaxLayersPerPartition: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if svc.Partitions() < 2 {
		t.Fatal("expected a multi-partition quantized deployment")
	}

	in := randomInput(m, 21)
	rep, err := svc.Infer(in)
	if err != nil {
		t.Fatal(err)
	}
	qw, err := quant.QuantizeWeights(m, w, 8)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Forward(quant.DequantizeWeights(qw), in)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(want, rep.Output, 0) {
		t.Fatalf("quantized pipeline differs from dequantized forward by %v",
			tensor.MaxAbsDiff(want, rep.Output))
	}
	float, _ := m.Forward(w, in)
	if d := tensor.MaxAbsDiff(float, rep.Output); d > 0.15 {
		t.Fatalf("8-bit serving drifted %v from the float model", d)
	}
}

// Quantization shrinks what ships, so cold-start weight loading gets
// faster and cheaper.
func TestQuantizationReducesLoadTime(t *testing.T) {
	m := zoo.MobileNet(0)
	w := nn.InitWeights(m, 5)

	run := func(bits int) (load float64) {
		fw := NewFramework(Options{})
		svc, err := fw.Submit(m, w, SubmitOptions{SkipCompute: true, QuantizeBits: bits})
		if err != nil {
			t.Fatal(err)
		}
		defer svc.Close()
		rep, err := svc.Infer(randomInput(m, 1))
		if err != nil {
			t.Fatal(err)
		}
		l, _ := Breakdown(rep)
		return l.Seconds()
	}
	floatLoad := run(0)
	q8Load := run(8)
	if q8Load >= floatLoad*0.5 {
		t.Fatalf("8-bit load %.2fs not ≪ float load %.2fs", q8Load, floatLoad)
	}
}

// Under the December 2020 quota update (10,240 MB, 1 MB steps) the
// platform accepts allocations the 2020 quota rejects, and a tight SLO
// lets the optimizer reach past 3008 MB.
func TestQuota2021Extension(t *testing.T) {
	meter := &billing.Meter{}
	p := perf.Default()
	pl2021 := lambda.NewWithQuota(meter, p, pricing.Quota2021())
	if err := pl2021.CreateFunction(lambda.FunctionConfig{
		Name: "big", MemoryMB: 5001, Handler: func(ctx *lambda.Context, b []byte) ([]byte, error) { return b, nil },
	}); err != nil {
		t.Fatalf("2021 quota rejected 5001 MB: %v", err)
	}
	pl2020 := lambda.New(meter, p)
	if err := pl2020.CreateFunction(lambda.FunctionConfig{
		Name: "big", MemoryMB: 5001, Handler: func(ctx *lambda.Context, b []byte) ([]byte, error) { return b, nil },
	}); err == nil {
		t.Fatal("2020 quota accepted 5001 MB")
	}

	// End-to-end through the framework: the 2021 platform still serves.
	fw := NewFramework(Options{Platform: pl2021, Meter: meter})
	m := zoo.TinyCNN(0)
	svc, err := fw.Submit(m, nn.InitWeights(m, 1), SubmitOptions{SkipCompute: true})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, err := svc.Infer(randomInput(m, 2)); err != nil {
		t.Fatal(err)
	}
	for _, mem := range svc.Plan.Memories() {
		if !pricing.Quota2021().ValidMemory(mem) {
			t.Fatalf("plan memory %d invalid under 2021 quota", mem)
		}
	}
}

func TestSubmitRejectsBadQuantBits(t *testing.T) {
	m := zoo.TinyCNN(0)
	fw := NewFramework(Options{})
	if _, err := fw.Submit(m, nn.InitWeights(m, 1), SubmitOptions{QuantizeBits: 3}); err == nil {
		t.Fatal("3-bit quantization accepted")
	}
}

// BERT-Base's encoder stack (≈324 MB) is the paper's "advanced models
// keep growing" concern: it cannot fit one function but partitions
// cleanly at encoder-block boundaries.
func TestBERTBaseServedPartitioned(t *testing.T) {
	m, err := zoo.Build("bertbase", 0)
	if err != nil {
		t.Fatal(err)
	}
	w := nn.InitWeights(m, 1)
	fw := NewFramework(Options{})
	svc, err := fw.Submit(m, w, SubmitOptions{SkipCompute: true})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if svc.Partitions() < 5 {
		t.Fatalf("bertbase served with %d partitions; 324 MB needs ≥5 under the 80 MB-per-partition budget", svc.Partitions())
	}
	in := tensor.New(m.InputShape...)
	rep, err := svc.Infer(in)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completion <= 0 || rep.Cost <= 0 {
		t.Fatal("degenerate bert report")
	}
}

// A real (computing) transformer pipeline must be bit-identical to the
// direct forward pass, like the CNNs.
func TestTinyTransformerPipelineCorrectness(t *testing.T) {
	m, err := zoo.Build("tinytransformer", 0)
	if err != nil {
		t.Fatal(err)
	}
	w := nn.InitWeights(m, 2)
	fw := NewFramework(Options{})
	svc, err := fw.Submit(m, w, SubmitOptions{MaxLayersPerPartition: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if svc.Partitions() < 2 {
		t.Fatalf("expected multi-partition transformer, got %d", svc.Partitions())
	}
	in := randomInput(m, 31)
	rep, err := svc.Infer(in)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Forward(w, in)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(want, rep.Output, 0) {
		t.Fatalf("transformer pipeline differs by %v", tensor.MaxAbsDiff(want, rep.Output))
	}
}
