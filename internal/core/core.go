// Package core is the public face of AMPS-Inf: an autonomous framework
// that accepts a pre-trained model (description + weights), derives the
// cost-optimal partitioning and memory provisioning under a response-time
// SLO (paper Sec. 3), deploys the partitions as serverless functions
// (Sec. 4), and serves inference requests with intermediate activations
// staged through object storage.
//
// Typical use:
//
//	fw := core.NewFramework(core.Options{})
//	svc, err := fw.Submit(model, weights, core.SubmitOptions{SLO: 30 * time.Second})
//	rep, err := svc.Infer(image)
//	fmt.Println(rep.Completion, rep.Cost, tensor.ArgMax(rep.Output))
package core

import (
	"fmt"
	"time"

	"ampsinf/internal/cloud/billing"
	"ampsinf/internal/cloud/faults"
	"ampsinf/internal/cloud/lambda"
	"ampsinf/internal/cloud/s3"
	"ampsinf/internal/cloud/stage"
	"ampsinf/internal/coordinator"
	"ampsinf/internal/nn"
	"ampsinf/internal/obs"
	"ampsinf/internal/optimizer"
	"ampsinf/internal/perf"
	"ampsinf/internal/quant"
	"ampsinf/internal/serving"
	"ampsinf/internal/tensor"
)

// Options configures a Framework. Zero values create a self-contained
// simulated environment with the calibrated defaults.
type Options struct {
	Platform *lambda.Platform
	Store    *s3.Store
	Meter    *billing.Meter
	Perf     *perf.Params
	S3Config *s3.Config
	// Stage overrides the staging backend entirely (e.g. a redis.Store);
	// when set it takes precedence over Store/S3Config.
	Stage stage.Store
	// Faults installs a fault injector on the platform and S3 store the
	// framework ends up with (nil = fault-free).
	Faults *faults.Injector
	// Trace installs the tracer as the meter's charge observer and
	// threads it through deployments, so every job's span tree (with
	// exact cost attribution) lands in Trace.Jobs() (see internal/obs).
	Trace *obs.Tracer
	// Metrics threads a metrics registry through the platform, store and
	// coordinator (counters, gauges, histograms; see internal/obs).
	Metrics *obs.Metrics
	// Series threads a windowed time-series stream through the platform,
	// coordinator and serving layer, keying per-window activity to the
	// simulated clock (see obs.TimeSeries).
	Series *obs.TimeSeries
}

// Framework owns the platform bindings and runs the Optimizer +
// Coordinator pipeline for submitted models.
type Framework struct {
	platform *lambda.Platform
	store    stage.Store
	meter    *billing.Meter
	perf     perf.Params
	tracer   *obs.Tracer
	metrics  *obs.Metrics
	series   *obs.TimeSeries
}

// NewFramework builds a framework, creating any environment pieces not
// supplied.
func NewFramework(opts Options) *Framework {
	meter := opts.Meter
	if meter == nil {
		meter = &billing.Meter{}
	}
	p := perf.Default()
	if opts.Perf != nil {
		p = *opts.Perf
	}
	platform := opts.Platform
	if platform == nil {
		platform = lambda.New(meter, p)
	}
	var store stage.Store = opts.Stage
	if store == nil && opts.Store != nil {
		store = opts.Store
	}
	if store == nil {
		cfg := s3.DefaultConfig()
		if opts.S3Config != nil {
			cfg = *opts.S3Config
		}
		store = s3.New(cfg, meter)
	}
	if opts.Faults != nil {
		platform.SetInjector(opts.Faults)
		if s3s, ok := store.(*s3.Store); ok {
			s3s.SetInjector(opts.Faults)
		}
		// Burst mode needs simulated time for store draws; the lambda
		// path passes its clock offset explicitly inside Invoke.
		opts.Faults.SetClock(platform.Now)
	}
	if opts.Trace != nil {
		meter.SetObserver(opts.Trace.RecordCost)
	}
	if opts.Metrics != nil {
		platform.SetMetrics(opts.Metrics)
		if s3s, ok := store.(*s3.Store); ok {
			s3s.SetMetrics(opts.Metrics)
		}
	}
	if opts.Series != nil {
		platform.SetSeries(opts.Series)
	}
	return &Framework{
		platform: platform, store: store, meter: meter, perf: p,
		tracer: opts.Trace, metrics: opts.Metrics, series: opts.Series,
	}
}

// Meter returns the framework's billing meter.
func (f *Framework) Meter() *billing.Meter { return f.meter }

// Platform returns the underlying serverless platform.
func (f *Framework) Platform() *lambda.Platform { return f.platform }

// Store returns the staging object store.
func (f *Framework) Store() stage.Store { return f.store }

// SubmitOptions tunes one submission.
type SubmitOptions struct {
	// SLO is the response-time objective (0 = cost-optimal, no deadline).
	SLO time.Duration
	// MaxLambdas caps partitions (K; default 16).
	MaxLambdas int
	// MaxLayersPerPartition is the paper's search-space cap (Eq. 6).
	MaxLayersPerPartition int
	// NamePrefix namespaces the deployed functions.
	NamePrefix string
	// UseBnB routes memory selection through the full QCR+BnB MIQP path.
	UseBnB bool
	// SkipCompute deploys in timing-only mode (see coordinator.Config).
	SkipCompute bool
	// QuantizeBits ships 8- or 4-bit quantized weights (0 = float32),
	// shrinking deployment packages 4-8× — the paper's future-work path
	// for models whose layers outgrow the platform size limit.
	QuantizeBits int
	// SearchStrideMB coarsens the optimizer's memory grid under
	// fine-grained quotas (0 = automatic).
	SearchStrideMB int
	// Retry makes serving resilient to transient platform faults (see
	// internal/cloud/faults); the zero value aborts jobs on the first
	// error.
	Retry coordinator.RetryPolicy
	// Deadline is the default per-job completion budget (0 = none);
	// jobs that exhaust it fail fast with coordinator.DeadlineError.
	Deadline time.Duration
	// Hedge launches speculative duplicate invocations of slow
	// partitions (zero value disables hedging).
	Hedge coordinator.HedgePolicy
	// Breaker short-circuits invocations of persistently failing
	// partition functions (zero value disables the breaker).
	Breaker coordinator.BreakerPolicy
	// Budget is the global retry budget shared across every retry and
	// hedge the deployment attempts (zero value leaves retries
	// unbudgeted).
	Budget coordinator.BudgetPolicy
	// Brownout is the default adaptive-degradation policy for
	// Service.Serve (zero value disables the controller).
	Brownout serving.BrownoutPolicy
	// FallbackBits, when non-zero, additionally deploys a quantized
	// fallback copy of the plan (8 or 4 bits) for brownout's plan-swap
	// rung; Service.Serve wires it in automatically.
	FallbackBits int
	// Pipeline is the default pipelined-serving policy for Service.Serve
	// (zero value keeps the sequential admission scheduler).
	Pipeline serving.PipelinePolicy
	// Batch is the default admission-batching policy for Service.Serve
	// (zero value keeps one request per invocation). Its MaxBatch also
	// widens the optimizer's batch co-plan.
	Batch serving.BatchPolicy
}

// Service is a deployed, ready-to-serve model.
type Service struct {
	framework  *Framework
	model      *nn.Model
	Plan       *optimizer.Plan
	deployment *coordinator.Deployment
	// fallback is the quantized copy of the same plan deployed when the
	// submission asked for FallbackBits; brownout swaps admissions onto
	// it at its plan-swap rung.
	fallback *coordinator.Deployment
	brownout serving.BrownoutPolicy
	// BatchPlan is the optimizer's batch-size co-plan for the deployed
	// partitioning: per-size time/cost evaluations against the chosen
	// memory blocks and the SLO, and the recommended size (Chosen).
	BatchPlan *optimizer.BatchPlan
	// pipeline and batch are the Serve-time defaults from SubmitOptions.
	pipeline serving.PipelinePolicy
	batch    serving.BatchPolicy
	// PlanningTime is the optimizer's wall-clock overhead (the paper
	// reports a few seconds on a laptop).
	PlanningTime time.Duration
}

// Submit runs the full AMPS-Inf pipeline: profile, optimize, split,
// package and deploy. The returned Service serves inference immediately.
func (f *Framework) Submit(model *nn.Model, weights nn.Weights, opts SubmitOptions) (*Service, error) {
	if model == nil {
		return nil, fmt.Errorf("core: nil model")
	}
	if err := model.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	weightScale := 0.0
	if opts.QuantizeBits > 0 {
		weightScale = quant.CompressionScale(opts.QuantizeBits)
	}
	quota := f.platform.Quota()
	start := time.Now()
	opt, err := optimizer.New(optimizer.Request{
		Model:                 model,
		Perf:                  f.perf,
		SLO:                   opts.SLO,
		MaxLambdas:            opts.MaxLambdas,
		MaxLayersPerPartition: opts.MaxLayersPerPartition,
		UseBnB:                opts.UseBnB,
		Quota:                 &quota,
		SearchStrideMB:        opts.SearchStrideMB,
		WeightScale:           weightScale,
	})
	if err != nil {
		return nil, fmt.Errorf("core: optimizing %q: %w", model.Name, err)
	}
	plan, err := opt.Optimize()
	if err != nil {
		return nil, fmt.Errorf("core: optimizing %q: %w", model.Name, err)
	}
	// Co-plan the invocation batch size against the plan's memory blocks
	// and the SLO: probe at least up to 8 so the co-plan is informative
	// even when the submission did not ask for batching.
	probe := opts.Batch.MaxBatch
	if probe < 8 {
		probe = 8
	}
	batchPlan, err := opt.CoPlanBatch(plan, probe)
	if err != nil {
		return nil, fmt.Errorf("core: co-planning batch for %q: %w", model.Name, err)
	}
	planning := time.Since(start)

	prefix := opts.NamePrefix
	if prefix == "" {
		prefix = "ampsinf"
	}
	dep, err := coordinator.Deploy(coordinator.Config{
		Platform: f.platform, Store: f.store, NamePrefix: prefix,
		SkipCompute: opts.SkipCompute, QuantizeBits: opts.QuantizeBits,
		Retry: opts.Retry, Deadline: opts.Deadline, Hedge: opts.Hedge,
		Breaker: opts.Breaker, Budget: opts.Budget, Tracer: f.tracer,
		Metrics: f.metrics, Series: f.series,
	}, model, weights, plan)
	if err != nil {
		return nil, fmt.Errorf("core: deploying %q: %w", model.Name, err)
	}
	var fb *coordinator.Deployment
	if opts.FallbackBits > 0 {
		// The fallback reuses the exact partition plan — same stage count,
		// same functions-per-request shape — with quantized packages, so a
		// mid-run swap never changes the pipeline's structure, only the
		// bytes each stage loads.
		fb, err = coordinator.Deploy(coordinator.Config{
			Platform: f.platform, Store: f.store,
			NamePrefix:  prefix + "-fallback",
			SkipCompute: opts.SkipCompute, QuantizeBits: opts.FallbackBits,
			Retry: opts.Retry, Deadline: opts.Deadline, Hedge: opts.Hedge,
			Breaker: opts.Breaker, Budget: opts.Budget, Tracer: f.tracer,
			Metrics: f.metrics, Series: f.series,
		}, model, weights, plan)
		if err != nil {
			dep.Teardown()
			return nil, fmt.Errorf("core: deploying %q fallback: %w", model.Name, err)
		}
	}
	return &Service{
		framework: f, model: model, Plan: plan, BatchPlan: batchPlan,
		pipeline: opts.Pipeline, batch: opts.Batch, brownout: opts.Brownout,
		deployment: dep, fallback: fb, PlanningTime: planning,
	}, nil
}

// Infer serves one input with the default (eager, overlapped) schedule.
func (s *Service) Infer(input *tensor.Tensor) (*coordinator.Report, error) {
	return s.deployment.RunEager(input)
}

// InferSequential serves one input with strictly sequential invocations
// (the formulation's execution model).
func (s *Service) InferSequential(input *tensor.Tensor) (*coordinator.Report, error) {
	return s.deployment.RunSequential(input)
}

// InferBatchParallel serves the inputs in concurrently-running pipelines.
func (s *Service) InferBatchParallel(inputs []*tensor.Tensor) (*coordinator.BatchReport, error) {
	return s.deployment.RunBatchParallel(inputs)
}

// InferBatchSequential serves the inputs one after another on warm
// functions.
func (s *Service) InferBatchSequential(inputs []*tensor.Tensor) (*coordinator.BatchReport, error) {
	return s.deployment.RunBatchSequential(inputs)
}

// InferBatched stacks the inputs into one tensor and serves them in a
// single pipeline pass.
func (s *Service) InferBatched(inputs []*tensor.Tensor) (*coordinator.Report, error) {
	return s.deployment.RunBatched(inputs)
}

// Serve runs the open-loop serving scheduler (internal/serving) on this
// service's deployment. The config's Deployment is filled in, Metrics
// defaults to the framework registry, and the Pipeline and Batch
// policies default to the ones the model was submitted with. A batching
// policy's MaxBatch is clamped into the optimizer co-plan's feasible
// range, so serving never stacks a batch the planned memory blocks
// cannot hold. MaxBatch < 0 asks for the co-plan's recommended size.
func (s *Service) Serve(inputs []*tensor.Tensor, arrivals []time.Duration, cfg serving.Config) (*serving.Report, error) {
	cfg.Deployment = s.deployment
	if cfg.Metrics == nil {
		cfg.Metrics = s.framework.metrics
	}
	if cfg.Series == nil {
		cfg.Series = s.framework.series
	}
	if ts := cfg.Series; ts != nil && s.BatchPlan != nil {
		// The optimizer's co-planned batch size, for comparison against
		// the batch sizes the admission window actually chooses.
		ts.Gauge(0, "serving_batch_coplanned", float64(s.BatchPlan.Chosen))
	}
	if cfg.Pipeline == (serving.PipelinePolicy{}) {
		cfg.Pipeline = s.pipeline
	}
	if cfg.Batch == (serving.BatchPolicy{}) {
		cfg.Batch = s.batch
	}
	if cfg.Batch.MaxBatch < 0 {
		cfg.Batch.MaxBatch = s.BatchPlan.Chosen
	} else if cfg.Batch.MaxBatch > 1 {
		cfg.Batch.MaxBatch = s.BatchPlan.Clamp(cfg.Batch.MaxBatch)
	}
	if !cfg.Brownout.Enabled {
		cfg.Brownout = s.brownout
	}
	if cfg.Fallback == nil {
		cfg.Fallback = s.fallback
	}
	return serving.Serve(cfg, inputs, arrivals)
}

// ServeTrace serves an open-loop request trace (FIFO on this pipeline);
// see coordinator.Deployment.ServeTrace.
func (s *Service) ServeTrace(inputs []*tensor.Tensor, arrivals []time.Duration) (*coordinator.TraceReport, error) {
	return s.deployment.ServeTrace(inputs, arrivals)
}

// ColdStart resets every partition container, so the next job measures a
// cold end-to-end serving time (used by the experiment harness).
func (s *Service) ColdStart() {
	for _, name := range s.deployment.FunctionNames() {
		s.framework.platform.ResetWarm(name)
	}
}

// Deployment exposes the underlying coordinator deployment, so
// concurrent serving schedulers (internal/serving) can drive it on the
// shared platform directly.
func (s *Service) Deployment() *coordinator.Deployment { return s.deployment }

// Close tears the deployment (and any fallback) down.
func (s *Service) Close() {
	s.deployment.Teardown()
	if s.fallback != nil {
		s.fallback.Teardown()
	}
}

// Fallback exposes the quantized fallback deployment, if the submission
// requested one via FallbackBits (nil otherwise).
func (s *Service) Fallback() *coordinator.Deployment { return s.fallback }

// Partitions reports how many lambdas serve the model.
func (s *Service) Partitions() int { return s.deployment.Partitions() }

// Model returns the served model.
func (s *Service) Model() *nn.Model { return s.model }

// Breakdown splits one job report into the paper's Fig 5/6 quantities:
// the summed model+weights loading time across the job's lambdas, and
// the prediction time (input/output transfers + compute).
func Breakdown(rep *coordinator.Report) (load, predict time.Duration) {
	for _, lr := range rep.PerLambda {
		load += lr.Load
		predict += lr.Read + lr.Compute + lr.Write
	}
	return load, predict
}
