package baselines

import (
	"fmt"
	"sync/atomic"
	"time"

	"ampsinf/internal/cloud/stage"
	"ampsinf/internal/cloud/stepfn"
	"ampsinf/internal/coordinator"
	"ampsinf/internal/modelfmt"
	"ampsinf/internal/tensor"
)

// SerferReport describes one Serfer-style inference run.
type SerferReport struct {
	Completion  time.Duration
	Cost        float64
	Output      *tensor.Tensor
	Transitions int
	// TransitionTime is the latency spent in Step Functions state
	// transitions alone (the overhead AMPS-Inf avoids).
	TransitionTime time.Duration
}

var serferJobSeq atomic.Int64

// RunSerfer serves one input the way Serfer does (paper Sec. 5.3): the
// same partitioning and memory configuration as the AMPS-Inf deployment,
// but orchestrated by an AWS Step Functions state machine with one task
// state per partition. Each state transition pays the measured latency
// and the per-transition fee — the paper's Fig 11 difference.
func RunSerfer(eng *stepfn.Engine, d *coordinator.Deployment, store stage.Store, input *tensor.Tensor) (*SerferReport, error) {
	meter := eng.Meter()
	before := meter.Total()

	job := fmt.Sprintf("serfer/jobs/%d", serferJobSeq.Add(1))
	inKey := job + "/input"
	upDur, err := store.Put(inKey, modelfmt.EncodeTensor(input))
	if err != nil {
		return nil, fmt.Errorf("baselines: serfer input upload: %w", err)
	}
	defer store.Delete(inKey)

	names := d.FunctionNames()
	states := make([]stepfn.State, len(names))
	for i, n := range names {
		states[i] = stepfn.State{Name: fmt.Sprintf("partition-%d", i), FunctionName: n}
	}
	exec, err := eng.Run(stepfn.Machine{Name: "serfer-" + job, States: states}, []byte(inKey))
	if err != nil {
		return nil, fmt.Errorf("baselines: serfer execution: %w", err)
	}
	for i := range names {
		store.Delete(fmt.Sprintf("%s/out%d", job, i))
	}
	out, err := modelfmt.DecodeTensor(exec.Output)
	if err != nil {
		return nil, fmt.Errorf("baselines: serfer output: %w", err)
	}
	return &SerferReport{
		Completion:     upDur + exec.Duration,
		Cost:           meter.Total() - before,
		Output:         out,
		Transitions:    exec.Transitions,
		TransitionTime: exec.TransitionTime,
	}, nil
}
