package baselines

import (
	"math/rand"
	"testing"

	"ampsinf/internal/cloud/billing"
	"ampsinf/internal/cloud/lambda"
	"ampsinf/internal/cloud/s3"
	"ampsinf/internal/cloud/stepfn"
	"ampsinf/internal/coordinator"
	"ampsinf/internal/nn"
	"ampsinf/internal/nn/zoo"
	"ampsinf/internal/optimizer"
	"ampsinf/internal/perf"
	"ampsinf/internal/tensor"
)

func newOptimizer(t *testing.T, model string, maxLayers int) *optimizer.Optimizer {
	t.Helper()
	m, err := zoo.Build(model, 0)
	if err != nil {
		t.Fatal(err)
	}
	o, err := optimizer.New(optimizer.Request{Model: m, Perf: perf.Default(), MaxLayersPerPartition: maxLayers})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestRandomPlanFeasibleAndUniformMemory(t *testing.T) {
	o := newOptimizer(t, "resnet50", 0)
	rng := rand.New(rand.NewSource(1))
	plan, err := RandomPlan(o, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Lambdas) < 1 {
		t.Fatal("empty plan")
	}
	mem := plan.Lambdas[0].MemoryMB
	for _, l := range plan.Lambdas {
		if l.MemoryMB != mem {
			t.Fatalf("Baseline 1 memories not uniform: %v", plan.Memories())
		}
	}
	// Different seeds should (eventually) give different plans.
	rng2 := rand.New(rand.NewSource(99))
	plan2, err := RandomPlan(o, rng2)
	if err != nil {
		t.Fatal(err)
	}
	if plan.EstCost == plan2.EstCost && len(plan.Lambdas) == len(plan2.Lambdas) && plan2.Lambdas[0].MemoryMB == mem {
		t.Log("two seeds produced identical plans (possible but unlikely)")
	}
}

func TestGreedyPlanUsesMaxMemoryAndFewPartitions(t *testing.T) {
	o := newOptimizer(t, "resnet50", 0)
	plan, err := GreedyLastLayerPlan(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range plan.Lambdas {
		if l.MemoryMB != optimizer.MaxMemoryBlock() {
			t.Fatalf("Baseline 2 memory %d, want max %d", l.MemoryMB, optimizer.MaxMemoryBlock())
		}
	}
	// Greedy packing should produce close to the minimum partition count.
	opt, err := OptimalPlan(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Lambdas) > len(opt.Lambdas)+2 {
		t.Fatalf("greedy used %d partitions vs optimal %d", len(plan.Lambdas), len(opt.Lambdas))
	}
}

// The paper's Fig 10 ordering: cost(B3) ≤ cost(AMPS-Inf) ≤ cost(B1) and
// cost(B3) ≤ cost(B2); B2 (max memory everywhere) is the costliest.
func TestCostOrderingAcrossBaselines(t *testing.T) {
	for _, model := range []string{"resnet50", "inceptionv3", "xception"} {
		o := newOptimizer(t, model, 0)
		b3, err := OptimalPlan(o)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := GreedyLastLayerPlan(o)
		if err != nil {
			t.Fatal(err)
		}
		b1, err := RandomPlan(o, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		if b3.EstCost > b1.EstCost+1e-12 {
			t.Errorf("%s: optimal $%.6f costlier than random $%.6f", model, b3.EstCost, b1.EstCost)
		}
		if b3.EstCost > b2.EstCost+1e-12 {
			t.Errorf("%s: optimal $%.6f costlier than greedy-max $%.6f", model, b3.EstCost, b2.EstCost)
		}
		if b2.EstCost < b3.EstCost*1.2 {
			t.Errorf("%s: max-memory baseline suspiciously cheap ($%.6f vs optimal $%.6f)", model, b2.EstCost, b3.EstCost)
		}
	}
}

type env struct {
	meter    *billing.Meter
	platform *lambda.Platform
	store    *s3.Store
}

func newEnv() *env {
	meter := &billing.Meter{}
	return &env{meter: meter, platform: lambda.New(meter, perf.Default()), store: s3.New(s3.DefaultConfig(), meter)}
}

func randomInput(m *nn.Model, seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	in := tensor.New(m.InputShape...)
	for i := range in.Data() {
		in.Data()[i] = float32(rng.Float64())
	}
	return in
}

// Serfer with the same configuration must be slower and costlier than the
// AMPS-Inf pipeline (Fig 11): the difference is the step-transition
// overhead.
func TestSerferSlowerThanDirectPipeline(t *testing.T) {
	o := newOptimizer(t, "tinycnn", 4)
	plan, err := OptimalPlan(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Lambdas) < 2 {
		t.Fatalf("need a multi-partition plan, got %d", len(plan.Lambdas))
	}
	m := o.Model()
	w := nn.InitWeights(m, 5)

	e := newEnv()
	dep, err := coordinator.Deploy(coordinator.Config{Platform: e.platform, Store: e.store}, m, w, plan)
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Teardown()

	in := randomInput(m, 11)
	direct, err := dep.RunSequential(in)
	if err != nil {
		t.Fatal(err)
	}

	for _, name := range dep.FunctionNames() {
		e.platform.ResetWarm(name)
	}
	eng := stepfn.NewEngine(e.platform, e.meter)
	serfer, err := RunSerfer(eng, dep, e.store, in)
	if err != nil {
		t.Fatal(err)
	}
	if serfer.Completion <= direct.Completion {
		t.Fatalf("serfer %v not slower than direct %v", serfer.Completion, direct.Completion)
	}
	if serfer.Cost <= direct.Cost {
		t.Fatalf("serfer $%.6f not costlier than direct $%.6f", serfer.Cost, direct.Cost)
	}
	if serfer.Transitions != dep.Partitions()+1 {
		t.Fatalf("transitions %d for %d partitions", serfer.Transitions, dep.Partitions())
	}
	// The prediction must still be correct.
	want, _ := m.Forward(w, in)
	if !tensor.AllClose(want, serfer.Output, 0) {
		t.Fatal("serfer output wrong")
	}
}

func TestBATCHServesBuffered(t *testing.T) {
	o := newOptimizer(t, "tinycnn", 0)
	m := o.Model()
	w := nn.InitWeights(m, 6)
	e := newEnv()
	sys, err := NewBATCH(coordinator.Config{Platform: e.platform, Store: e.store}, o, w, 2048, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	images := []*tensor.Tensor{
		randomInput(m, 1), randomInput(m, 2), randomInput(m, 3), randomInput(m, 4), randomInput(m, 5),
	}
	rep, err := sys.Serve(images)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Batches != 3 { // 2 + 2 + 1
		t.Fatalf("batches = %d, want 3", rep.Batches)
	}
	if len(rep.Outputs) != len(images) {
		t.Fatalf("%d outputs for %d images", len(rep.Outputs), len(images))
	}
	for i, img := range images {
		want, _ := m.Forward(w, img)
		if !tensor.AllClose(want, rep.Outputs[i], 1e-5) {
			t.Fatalf("BATCH output %d wrong by %v", i, tensor.MaxAbsDiff(want, rep.Outputs[i]))
		}
	}
}

func TestBATCHRejectsOversizedModel(t *testing.T) {
	o := newOptimizer(t, "resnet50", 0)
	e := newEnv()
	m := o.Model()
	_, err := NewBATCH(coordinator.Config{Platform: e.platform, Store: e.store}, o, nn.InitWeights(m, 1), 3008, 10)
	if err == nil {
		t.Fatal("BATCH accepted a model that cannot fit one lambda")
	}
}

func TestPlanForConfigValidation(t *testing.T) {
	o := newOptimizer(t, "tinycnn", 0)
	S := len(o.Segments())
	if _, err := o.PlanForConfig([]int{0, S}, []int{999}); err == nil {
		t.Fatal("invalid block accepted")
	}
	if _, err := o.PlanForConfig([]int{0}, nil); err == nil {
		t.Fatal("degenerate bounds accepted")
	}
	if _, err := o.PlanForConfig([]int{0, S}, []int{128}); err == nil {
		t.Fatal("infeasibly small block accepted")
	}
}
