package baselines

import (
	"fmt"
	"time"

	"ampsinf/internal/coordinator"
	"ampsinf/internal/nn"
	"ampsinf/internal/optimizer"
	"ampsinf/internal/tensor"
)

// BATCHSystem reproduces the BATCH baseline (Ali et al., SC'20) as the
// paper compares against it: inference serving on a single lambda (no
// model splitting) with requests buffered into fixed-size batches, one
// sequential lambda invocation per batch.
type BATCHSystem struct {
	dep       *coordinator.Deployment
	BatchSize int
	// BufferWait is the time each batch spends accumulating in BATCH's
	// request buffer before dispatch (its adaptive-batching design waits
	// for the buffer to fill or a timer to fire). Added to completion,
	// not billed to the lambda.
	BufferWait time.Duration
}

// NewBATCH deploys the whole model on one lambda with the given memory
// block. It fails when the model does not fit a single function — BATCH
// has no answer for such models, which is the gap AMPS-Inf fills.
func NewBATCH(cfg coordinator.Config, o *optimizer.Optimizer, weights nn.Weights, memMB, batchSize int) (*BATCHSystem, error) {
	if batchSize <= 0 {
		return nil, fmt.Errorf("baselines: batch size %d", batchSize)
	}
	S := len(o.Segments())
	if !o.SpanFeasible(0, S) {
		return nil, fmt.Errorf("baselines: model %q does not fit a single lambda; BATCH cannot serve it", o.Model().Name)
	}
	plan, err := o.PlanForConfig([]int{0, S}, []int{memMB})
	if err != nil {
		return nil, err
	}
	if cfg.NamePrefix == "" {
		cfg.NamePrefix = "batch"
	}
	dep, err := coordinator.Deploy(cfg, o.Model(), weights, plan)
	if err != nil {
		return nil, err
	}
	return &BATCHSystem{dep: dep, BatchSize: batchSize, BufferWait: 2 * time.Second}, nil
}

// Close tears down the deployment.
func (b *BATCHSystem) Close() { b.dep.Teardown() }

// BATCHReport describes one buffered serving run.
type BATCHReport struct {
	Completion time.Duration
	Cost       float64
	Batches    int
	Outputs    []*tensor.Tensor
}

// Serve buffers the images into batches of BatchSize and invokes the
// single lambda once per batch, sequentially (as the paper configures
// BATCH for Fig 13).
func (b *BATCHSystem) Serve(images []*tensor.Tensor) (*BATCHReport, error) {
	if len(images) == 0 {
		return nil, fmt.Errorf("baselines: no images")
	}
	rep := &BATCHReport{}
	for lo := 0; lo < len(images); lo += b.BatchSize {
		hi := lo + b.BatchSize
		if hi > len(images) {
			hi = len(images)
		}
		r, err := b.dep.RunBatched(images[lo:hi])
		if err != nil {
			return nil, fmt.Errorf("baselines: BATCH batch %d: %w", rep.Batches, err)
		}
		rep.Batches++
		rep.Completion += b.BufferWait + r.Completion
		rep.Cost += r.Cost
		// Unstack per-image outputs.
		out := r.Output
		n := out.Shape()[0]
		inner := out.Elems() / n
		for i := 0; i < n; i++ {
			row := make([]float32, inner)
			copy(row, out.Data()[i*inner:(i+1)*inner])
			shape := append([]int{1}, out.Shape()[1:]...)
			rep.Outputs = append(rep.Outputs, tensor.FromSlice(row, shape...))
		}
	}
	return rep, nil
}
