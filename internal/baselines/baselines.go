// Package baselines implements every system the paper compares AMPS-Inf
// against (Sec. 5.1, 5.3–5.4):
//
//   - Baseline 1 — a random valid partitioning with a random common
//     memory allocation for all lambdas.
//   - Baseline 2 — greedy packing from the last layer backwards until
//     each partition is about to hit the platform limit, with the maximum
//     memory (3008 MB in 2020) for every lambda.
//   - Baseline 3 — the cost-optimal configuration by exhaustive search
//     (no SLO), which the optimizer's λ=0 dynamic program computes
//     exactly.
//   - Serfer — the state-of-the-art serverless inference pipeline driven
//     by AWS Step Functions, using the same partitioning and memory
//     configuration as AMPS-Inf but paying per-state transition latency
//     and fees.
//   - BATCH — single-lambda inference serving with request batching (no
//     model splitting), invoking one lambda per batch sequentially.
//
// SageMaker's Sage 1/Sage 2 settings live in internal/cloud/sagemaker.
package baselines

import (
	"fmt"
	"math/rand"

	"ampsinf/internal/cloud/pricing"
	"ampsinf/internal/optimizer"
)

// RandomPlan implements Baseline 1: pick a way of partitioning uniformly
// at random among feasible cuts, and one random feasible memory block
// shared by all lambdas. The generator retries until the configuration is
// feasible end to end.
func RandomPlan(o *optimizer.Optimizer, rng *rand.Rand) (*optimizer.Plan, error) {
	S := len(o.Segments())
	for attempt := 0; attempt < 2000; attempt++ {
		// Random boundary subset.
		bounds := []int{0}
		for b := 1; b < S; b++ {
			if rng.Intn(3) == 0 {
				bounds = append(bounds, b)
			}
		}
		bounds = append(bounds, S)
		// Feasibility of every span.
		ok := true
		for i := 0; i+1 < len(bounds); i++ {
			if !o.SpanFeasible(bounds[i], bounds[i+1]) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		// Random memory shared by all partitions; it must be feasible for
		// every span, so draw from the intersection.
		common := o.FeasibleMemories(bounds[0], bounds[1])
		for i := 1; i+1 < len(bounds); i++ {
			common = intersect(common, o.FeasibleMemories(bounds[i], bounds[i+1]))
		}
		if len(common) == 0 {
			continue
		}
		mem := common[rng.Intn(len(common))]
		mems := make([]int, len(bounds)-1)
		for i := range mems {
			mems[i] = mem
		}
		plan, err := o.PlanForConfig(bounds, mems)
		if err != nil {
			continue
		}
		return plan, nil
	}
	return nil, fmt.Errorf("baselines: no feasible random configuration found")
}

func intersect(a, b []int) []int {
	set := make(map[int]bool, len(b))
	for _, v := range b {
		set[v] = true
	}
	var out []int
	for _, v := range a {
		if set[v] {
			out = append(out, v)
		}
	}
	return out
}

// GreedyLastLayerPlan implements Baseline 2: starting from the last
// layer, include layers one by one into a partition until the platform
// limit is about to be hit, then start the next partition; allocate the
// maximum memory (3008 MB) to every lambda.
func GreedyLastLayerPlan(o *optimizer.Optimizer) (*optimizer.Plan, error) {
	S := len(o.Segments())
	maxMem := pricing.LambdaMaxMemoryMB
	var rev []int // partition boundaries collected right-to-left
	hi := S
	for hi > 0 {
		lo := hi - 1
		// Extend the partition backwards while it stays feasible.
		for lo > 0 && o.SpanFeasible(lo-1, hi) && memFeasible(o, lo-1, hi, maxMem) {
			lo--
		}
		if !o.SpanFeasible(lo, hi) || !memFeasible(o, lo, hi, maxMem) {
			return nil, fmt.Errorf("baselines: segments [%d, %d) cannot fit any partition", lo, hi)
		}
		rev = append(rev, hi)
		hi = lo
	}
	bounds := []int{0}
	for i := len(rev) - 1; i >= 0; i-- {
		bounds = append(bounds, rev[i])
	}
	mems := make([]int, len(bounds)-1)
	for i := range mems {
		mems[i] = maxMem
	}
	return o.PlanForConfig(bounds, mems)
}

func memFeasible(o *optimizer.Optimizer, a, b, mem int) bool {
	for _, m := range o.FeasibleMemories(a, b) {
		if m == mem {
			return true
		}
	}
	return false
}

// OptimalPlan implements Baseline 3: the cost-optimal configuration by
// exhaustive search over cuts and blocks, with no SLO. The optimizer's
// λ=0 dynamic program is exact for this objective (a property test in
// internal/optimizer asserts it against literal enumeration).
func OptimalPlan(o *optimizer.Optimizer) (*optimizer.Plan, error) {
	return o.OptimizeCostOnly()
}
