// Package miqp solves the 0-1 quadratic programs at the heart of the
// paper's formulation (Eq. 12–23): minimize x'Qx + p'x over binary x
// subject to linear constraints. Following the paper's solution path, a
// non-convex objective is first made convex with the QCR diagonal
// perturbation μ(x_j² − x_j) — which vanishes on binary points, so the
// reformulation is exact — and the convexified problem is solved by
// branch-and-bound with box-relaxation lower bounds. A brute-force
// solver cross-checks the search on small instances.
package miqp

import (
	"fmt"
	"math"
)

// LinConstraint is one linear row: A·x (≤ or =) B.
type LinConstraint struct {
	A []float64
	B float64
}

// Problem is a 0-1 quadratic program:
//
//	minimize   x'Qx + P'x
//	subject to Ineq: a'x ≤ b,  Eq: a'x = b,  x ∈ {0,1}^N
type Problem struct {
	N    int
	Q    [][]float64 // symmetric N×N; nil means all-zero (pure linear)
	P    []float64   // length N
	Ineq []LinConstraint
	Eq   []LinConstraint
}

// Validate checks dimensions and symmetry.
func (pr *Problem) Validate() error {
	if pr.N <= 0 {
		return fmt.Errorf("miqp: N = %d", pr.N)
	}
	if len(pr.P) != pr.N {
		return fmt.Errorf("miqp: len(P) = %d, want %d", len(pr.P), pr.N)
	}
	if pr.Q != nil {
		if len(pr.Q) != pr.N {
			return fmt.Errorf("miqp: Q is %d×?, want %d×%d", len(pr.Q), pr.N, pr.N)
		}
		for i, row := range pr.Q {
			if len(row) != pr.N {
				return fmt.Errorf("miqp: Q row %d has %d entries", i, len(row))
			}
			for j := range row {
				if math.Abs(pr.Q[i][j]-pr.Q[j][i]) > 1e-9*(1+math.Abs(pr.Q[i][j])) {
					return fmt.Errorf("miqp: Q not symmetric at (%d, %d)", i, j)
				}
			}
		}
	}
	for k, c := range pr.Ineq {
		if len(c.A) != pr.N {
			return fmt.Errorf("miqp: inequality %d has %d coefficients", k, len(c.A))
		}
	}
	for k, c := range pr.Eq {
		if len(c.A) != pr.N {
			return fmt.Errorf("miqp: equality %d has %d coefficients", k, len(c.A))
		}
	}
	return nil
}

// Objective evaluates x'Qx + P'x.
func (pr *Problem) Objective(x []float64) float64 {
	v := 0.0
	for j, xv := range x {
		v += pr.P[j] * xv
	}
	if pr.Q != nil {
		for i := range pr.Q {
			if x[i] == 0 {
				continue
			}
			row := pr.Q[i]
			for j := range row {
				v += x[i] * row[j] * x[j]
			}
		}
	}
	return v
}

// Feasible reports whether binary point x satisfies all constraints
// within tol.
func (pr *Problem) Feasible(x []float64, tol float64) bool {
	for _, c := range pr.Ineq {
		if dot(c.A, x) > c.B+tol {
			return false
		}
	}
	for _, c := range pr.Eq {
		if math.Abs(dot(c.A, x)-c.B) > tol {
			return false
		}
	}
	return true
}

func dot(a, x []float64) float64 {
	v := 0.0
	for i, av := range a {
		v += av * x[i]
	}
	return v
}

// MinEigenvalue estimates the smallest eigenvalue of symmetric Q by
// shifted power iteration: λmin(Q) = σ − λmax(σI − Q) with σ a
// Gershgorin upper bound. The estimate errs on the small side by at most
// the iteration tolerance, which keeps the QCR shift valid.
func MinEigenvalue(Q [][]float64) float64 {
	n := len(Q)
	if n == 0 {
		return 0
	}
	// Gershgorin upper bound for λmax(Q).
	sigma := math.Inf(-1)
	for i := range Q {
		r := 0.0
		for j := range Q[i] {
			if i != j {
				r += math.Abs(Q[i][j])
			}
		}
		if v := Q[i][i] + r; v > sigma {
			sigma = v
		}
	}
	// Power iteration on M = σI − Q (PSD-ish, λmax(M) = σ − λmin(Q)).
	// Deterministic non-degenerate start: varying components avoid being
	// orthogonal to the dominant eigenvector for structured matrices.
	v := make([]float64, n)
	norm0 := 0.0
	for i := range v {
		v[i] = 1 + 0.37*float64(i%7) + 0.013*float64(i)
		norm0 += v[i] * v[i]
	}
	norm0 = math.Sqrt(norm0)
	for i := range v {
		v[i] /= norm0
	}
	mv := make([]float64, n)
	lambda := 0.0
	for it := 0; it < 500; it++ {
		for i := range mv {
			s := sigma * v[i]
			for j := range Q[i] {
				s -= Q[i][j] * v[j]
			}
			mv[i] = s
		}
		norm := 0.0
		for _, x := range mv {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return sigma // Q = σI exactly
		}
		newLambda := 0.0
		for i := range mv {
			newLambda += v[i] * mv[i]
			v[i] = mv[i] / norm
		}
		if it > 10 && math.Abs(newLambda-lambda) < 1e-12*(1+math.Abs(newLambda)) {
			lambda = newLambda
			break
		}
		lambda = newLambda
	}
	return sigma - lambda
}

// Convexify applies the QCR diagonal perturbation: it returns a problem
// with Q' = Q + μI and P' = P − μ·1, where μ = max(0, −λmin(Q)) + ε.
// Since x_j² = x_j on binary points, the perturbed objective equals the
// original on every feasible solution while being convex, enabling the
// branch-and-bound relaxation bounds. The chosen μ is also returned.
func Convexify(pr *Problem) (*Problem, float64) {
	if pr.Q == nil {
		return pr, 0
	}
	lmin := MinEigenvalue(pr.Q)
	if lmin >= 0 {
		return pr, 0
	}
	mu := -lmin + 1e-9
	n := pr.N
	q := make([][]float64, n)
	for i := range q {
		q[i] = append([]float64(nil), pr.Q[i]...)
		q[i][i] += mu
	}
	p := append([]float64(nil), pr.P...)
	for i := range p {
		p[i] -= mu
	}
	return &Problem{N: n, Q: q, P: p, Ineq: pr.Ineq, Eq: pr.Eq}, mu
}
