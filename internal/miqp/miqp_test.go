package miqp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	good := &Problem{N: 2, P: []float64{1, 2}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Problem{
		{N: 0},
		{N: 2, P: []float64{1}},
		{N: 2, P: []float64{1, 2}, Q: [][]float64{{1, 2}}},
		{N: 2, P: []float64{1, 2}, Q: [][]float64{{1, 2}, {3, 1}}}, // asymmetric
		{N: 2, P: []float64{1, 2}, Ineq: []LinConstraint{{A: []float64{1}, B: 0}}},
	}
	for i, pr := range bad {
		if err := pr.Validate(); err == nil {
			t.Errorf("bad problem %d accepted", i)
		}
	}
}

func TestObjective(t *testing.T) {
	pr := &Problem{
		N: 2,
		Q: [][]float64{{1, 0.5}, {0.5, 2}},
		P: []float64{3, -1},
	}
	// x = (1,1): 1 + 0.5 + 0.5 + 2 + 3 - 1 = 6.
	if got := pr.Objective([]float64{1, 1}); math.Abs(got-6) > 1e-12 {
		t.Fatalf("objective = %v, want 6", got)
	}
	if got := pr.Objective([]float64{0, 0}); got != 0 {
		t.Fatalf("objective at origin = %v", got)
	}
}

func TestMinEigenvalue(t *testing.T) {
	cases := []struct {
		q    [][]float64
		want float64
	}{
		{[][]float64{{2, 0}, {0, 3}}, 2},
		{[][]float64{{-1, 0}, {0, 5}}, -1},
		{[][]float64{{0, 1}, {1, 0}}, -1}, // eigenvalues ±1
		{[][]float64{{4}}, 4},
	}
	for i, c := range cases {
		got := MinEigenvalue(c.q)
		if math.Abs(got-c.want) > 1e-6 {
			t.Errorf("case %d: λmin = %v, want %v", i, got, c.want)
		}
	}
}

func TestConvexifyPreservesBinaryObjective(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pr := randomProblem(rng, 6, true)
	conv, mu := Convexify(pr)
	if mu < 0 {
		t.Fatalf("negative μ %v", mu)
	}
	// Objectives must agree on all binary points.
	x := make([]float64, pr.N)
	for mask := 0; mask < 1<<pr.N; mask++ {
		for j := 0; j < pr.N; j++ {
			x[j] = float64((mask >> j) & 1)
		}
		a, b := pr.Objective(x), conv.Objective(x)
		if math.Abs(a-b) > 1e-6*(1+math.Abs(a)) {
			t.Fatalf("objectives diverge at %v: %v vs %v", x, a, b)
		}
	}
	// Convexified Q must be PSD.
	if conv.Q != nil {
		if l := MinEigenvalue(conv.Q); l < -1e-6 {
			t.Fatalf("convexified λmin = %v", l)
		}
	}
}

func TestSolveUnconstrainedLinear(t *testing.T) {
	pr := &Problem{N: 3, P: []float64{1, -2, 0}}
	sol, err := Solve(pr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	// Optimal: x = (0,1,0), objective -2.
	if math.Abs(sol.Objective+2) > 1e-9 {
		t.Fatalf("objective %v, want -2", sol.Objective)
	}
	if sol.X[0] != 0 || sol.X[1] != 1 {
		t.Fatalf("x = %v", sol.X)
	}
}

func TestSolveOneHotConstraint(t *testing.T) {
	// Pick exactly one of three options; costs 5, 2, 7.
	pr := &Problem{
		N: 3, P: []float64{5, 2, 7},
		Eq: []LinConstraint{{A: []float64{1, 1, 1}, B: 1}},
	}
	sol, err := Solve(pr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || sol.Objective != 2 || sol.X[1] != 1 {
		t.Fatalf("sol = %+v", sol)
	}
}

func TestSolveInfeasible(t *testing.T) {
	pr := &Problem{
		N: 2, P: []float64{1, 1},
		Eq: []LinConstraint{{A: []float64{1, 1}, B: 3}}, // max is 2
	}
	sol, err := Solve(pr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status %v", sol.Status)
	}
}

func TestSolveNonConvexQuadratic(t *testing.T) {
	// Indefinite Q rewards picking both variables together.
	pr := &Problem{
		N: 2,
		Q: [][]float64{{0, -3}, {-3, 0}},
		P: []float64{1, 1},
	}
	sol, err := Solve(pr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// (1,1): -6 + 2 = -4 is the minimum.
	if sol.Status != Optimal || math.Abs(sol.Objective+4) > 1e-9 {
		t.Fatalf("sol = %+v", sol)
	}
}

func TestSolveWithKnapsackConstraint(t *testing.T) {
	// Maximize value (minimize negative) under weight ≤ 5.
	pr := &Problem{
		N: 4, P: []float64{-3, -4, -5, -6},
		Ineq: []LinConstraint{{A: []float64{2, 3, 4, 5}, B: 5}},
	}
	sol, err := Solve(pr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bf, _ := BruteForce(pr)
	if math.Abs(sol.Objective-bf.Objective) > 1e-9 {
		t.Fatalf("BnB %v vs brute force %v", sol.Objective, bf.Objective)
	}
}

func TestNodeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pr := randomProblem(rng, 16, true)
	sol, err := Solve(pr, Options{MaxNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status == Optimal {
		t.Fatalf("3-node budget claimed optimality (nodes=%d)", sol.Nodes)
	}
}

func TestBruteForceLimits(t *testing.T) {
	if _, err := BruteForce(&Problem{N: 30, P: make([]float64, 30)}); err == nil {
		t.Fatal("oversized brute force accepted")
	}
}

// The central property: branch-and-bound agrees with brute force on
// random constrained non-convex instances.
func TestSolveMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		pr := randomProblem(rng, n, rng.Intn(2) == 0)
		sol, err := Solve(pr, Options{})
		if err != nil {
			return false
		}
		bf, err := BruteForce(pr)
		if err != nil {
			return false
		}
		if bf.Status == Infeasible {
			return sol.Status == Infeasible
		}
		if sol.Status != Optimal {
			return false
		}
		return math.Abs(sol.Objective-bf.Objective) <= 1e-6*(1+math.Abs(bf.Objective))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveOneHotHelper(t *testing.T) {
	q := []float64{1, 0, 2}
	p := []float64{4, 6, 1}
	idx, val := SolveOneHot(q, p, nil)
	if idx != 2 || val != 3 {
		t.Fatalf("one-hot = %d/%v", idx, val)
	}
	idx, _ = SolveOneHot(q, p, []bool{true, true, false})
	if idx != 0 {
		t.Fatalf("masked one-hot = %d", idx)
	}
	idx, _ = SolveOneHot(q, p, []bool{false, false, false})
	if idx != -1 {
		t.Fatal("all-forbidden should return -1")
	}
}

// randomProblem generates a small problem with an indefinite quadratic,
// a knapsack row and optionally a one-hot equality.
func randomProblem(rng *rand.Rand, n int, withEq bool) *Problem {
	q := make([][]float64, n)
	for i := range q {
		q[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64() * 2
			q[i][j] = v
			q[j][i] = v
		}
	}
	p := make([]float64, n)
	a := make([]float64, n)
	for i := range p {
		p[i] = rng.NormFloat64() * 3
		a[i] = rng.Float64() * 3
	}
	pr := &Problem{
		N: n, Q: q, P: p,
		Ineq: []LinConstraint{{A: a, B: rng.Float64() * float64(n)}},
	}
	if withEq {
		ones := make([]float64, n)
		for i := range ones {
			ones[i] = 1
		}
		pr.Eq = []LinConstraint{{A: ones, B: float64(1 + rng.Intn(2))}}
	}
	return pr
}

func TestStatusStrings(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || NodeLimit.String() != "node-limit" {
		t.Fatal("status names wrong")
	}
}

func TestConvexifyLinearProblemNoop(t *testing.T) {
	pr := &Problem{N: 2, P: []float64{1, -1}}
	conv, mu := Convexify(pr)
	if conv != pr || mu != 0 {
		t.Fatal("linear problem perturbed")
	}
	psd := &Problem{N: 2, P: []float64{0, 0}, Q: [][]float64{{1, 0}, {0, 2}}}
	conv2, mu2 := Convexify(psd)
	if conv2 != psd || mu2 != 0 {
		t.Fatal("PSD problem perturbed")
	}
}

func TestMinEigenvalueEmpty(t *testing.T) {
	if MinEigenvalue(nil) != 0 {
		t.Fatal("empty matrix eigenvalue")
	}
}

func TestFeasibleTolerances(t *testing.T) {
	pr := &Problem{
		N: 2, P: []float64{0, 0},
		Ineq: []LinConstraint{{A: []float64{1, 1}, B: 1}},
	}
	if !pr.Feasible([]float64{1, 0}, 1e-9) {
		t.Fatal("boundary point rejected")
	}
	if pr.Feasible([]float64{1, 1}, 1e-9) {
		t.Fatal("violating point accepted")
	}
}
