package miqp

import (
	"math/rand"
	"testing"
)

func BenchmarkSolveNonConvex12(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	pr := randomProblem(rng, 12, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(pr, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConvexify(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	pr := randomProblem(rng, 20, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Convexify(pr)
	}
}

func BenchmarkMinEigenvalue(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	pr := randomProblem(rng, 46, false) // one variable per 2020 memory block
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinEigenvalue(pr.Q)
	}
}

func BenchmarkSolveOneHot46(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	q := make([]float64, 46)
	p := make([]float64, 46)
	allowed := make([]bool, 46)
	for i := range q {
		q[i] = rng.Float64()
		p[i] = rng.Float64()
		allowed[i] = i%3 != 0
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SolveOneHot(q, p, allowed)
	}
}
