package miqp

import (
	"fmt"
	"math"
)

// Status reports how a solve ended.
type Status int

const (
	// Optimal means the search proved optimality.
	Optimal Status = iota
	// Infeasible means no binary point satisfies the constraints.
	Infeasible
	// NodeLimit means the search hit its node budget; the incumbent (if
	// any) is feasible but unproven.
	NodeLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	default:
		return "node-limit"
	}
}

// Solution is the result of a solve.
type Solution struct {
	X         []float64
	Objective float64
	Status    Status
	Nodes     int // branch-and-bound nodes explored
}

// Options tunes Solve.
type Options struct {
	// MaxNodes bounds the search (default 1 << 20).
	MaxNodes int
}

const feasTol = 1e-6

// Solve minimizes the 0-1 quadratic program by QCR convexification and
// depth-first branch-and-bound. Lower bounds come from minimizing the
// convexified objective over the [0,1] box with fixed variables honored
// (dropping the linear constraints — a relaxation, hence a valid bound);
// partial assignments are pruned by interval feasibility of each
// constraint.
func Solve(pr *Problem, opts Options) (*Solution, error) {
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	if opts.MaxNodes <= 0 {
		opts.MaxNodes = 1 << 20
	}
	conv, _ := Convexify(pr)

	s := &solver{orig: pr, conv: conv, maxNodes: opts.MaxNodes}
	s.best = math.Inf(1)
	s.relax = make([]float64, pr.N)
	s.grad = make([]float64, pr.N)
	s.xtmp = make([]float64, pr.N)
	// The projected-gradient step 1/(2·λmax bound) depends only on the
	// convexified Q, which never changes during the search — compute it
	// once instead of per node.
	s.step = 1.0
	if conv.Q != nil {
		lip := 0.0
		for i := range conv.Q {
			r := 0.0
			for j := range conv.Q[i] {
				r += math.Abs(conv.Q[i][j])
			}
			if v := 2 * r; v > lip {
				lip = v
			}
		}
		if lip > 0 {
			s.step = 1 / lip
		}
	}
	fixed := make([]int8, pr.N) // -1 free, 0, 1
	for i := range fixed {
		fixed[i] = -1
	}
	s.branch(fixed)

	sol := &Solution{Nodes: s.nodes}
	switch {
	case s.bestX == nil && s.nodes >= s.maxNodes:
		sol.Status = NodeLimit
	case s.bestX == nil:
		sol.Status = Infeasible
	case s.nodes >= s.maxNodes:
		sol.Status = NodeLimit
		sol.X = s.bestX
		sol.Objective = s.best
	default:
		sol.Status = Optimal
		sol.X = s.bestX
		sol.Objective = s.best
	}
	return sol, nil
}

type solver struct {
	orig, conv *Problem
	best       float64
	bestX      []float64
	nodes      int
	maxNodes   int
	step       float64 // projected-gradient step, 1/Lipschitz
	// Per-node scratch. relax is only read between a node's own
	// lowerBound call and its first recursive branch, so one shared
	// buffer serves the whole depth-first search; xtmp holds complete
	// assignments, copied into bestX only on incumbent improvement.
	relax []float64
	grad  []float64
	xtmp  []float64
}

func (s *solver) branch(fixed []int8) {
	if s.nodes >= s.maxNodes {
		return
	}
	s.nodes++

	if !s.partialFeasible(fixed) {
		return
	}
	bound, relax := s.lowerBound(fixed)
	if bound >= s.best-1e-12 {
		return
	}

	// Pick the most fractional free variable from the relaxation.
	branchVar, bestFrac := -1, -1.0
	complete := true
	for j, f := range fixed {
		if f >= 0 {
			continue
		}
		complete = false
		frac := 0.5 - math.Abs(relax[j]-0.5)
		if frac > bestFrac {
			bestFrac, branchVar = frac, j
		}
	}
	if complete {
		x := s.xtmp
		for j, f := range fixed {
			x[j] = float64(f)
		}
		if !s.orig.Feasible(x, feasTol) {
			return
		}
		obj := s.orig.Objective(x)
		if obj < s.best {
			s.best = obj
			s.bestX = append(s.bestX[:0], x...)
		}
		return
	}

	// Dive toward the relaxation's preference first.
	first, second := int8(1), int8(0)
	if relax[branchVar] < 0.5 {
		first, second = 0, 1
	}
	fixed[branchVar] = first
	s.branch(fixed)
	fixed[branchVar] = second
	s.branch(fixed)
	fixed[branchVar] = -1
}

// partialFeasible checks whether any completion of fixed can satisfy the
// linear constraints, using interval bounds of each row.
func (s *solver) partialFeasible(fixed []int8) bool {
	for _, c := range s.orig.Ineq {
		lo := rowRangeLo(c.A, fixed)
		if lo > c.B+feasTol {
			return false
		}
	}
	for _, c := range s.orig.Eq {
		lo := rowRangeLo(c.A, fixed)
		hi := rowRangeHi(c.A, fixed)
		if lo > c.B+feasTol || hi < c.B-feasTol {
			return false
		}
	}
	return true
}

func rowRangeLo(a []float64, fixed []int8) float64 {
	v := 0.0
	for j, aj := range a {
		switch {
		case fixed[j] >= 0:
			v += aj * float64(fixed[j])
		case aj < 0:
			v += aj
		}
	}
	return v
}

func rowRangeHi(a []float64, fixed []int8) float64 {
	v := 0.0
	for j, aj := range a {
		switch {
		case fixed[j] >= 0:
			v += aj * float64(fixed[j])
		case aj > 0:
			v += aj
		}
	}
	return v
}

// lowerBound minimizes the convexified objective over the box with fixed
// variables pinned, by projected gradient descent. The box relaxation
// drops the linear constraints, so the value is a valid lower bound for
// every completion of fixed. It also returns the relaxation point for
// branching guidance.
func (s *solver) lowerBound(fixed []int8) (float64, []float64) {
	x := s.relax
	for j := range x {
		if fixed[j] >= 0 {
			x[j] = float64(fixed[j])
		} else {
			x[j] = 0.5
		}
	}
	if s.conv.Q == nil {
		// Linear objective: minimized at the box corner per sign.
		for j := range x {
			if fixed[j] >= 0 {
				continue
			}
			if s.conv.P[j] >= 0 {
				x[j] = 0
			} else {
				x[j] = 1
			}
		}
		return s.conv.Objective(x), x
	}
	step := s.step
	grad := s.grad
	for it := 0; it < 300; it++ {
		moved := 0.0
		for i := range grad {
			g := s.conv.P[i]
			row := s.conv.Q[i]
			for j := range row {
				g += 2 * row[j] * x[j]
			}
			grad[i] = g
		}
		for j := range x {
			if fixed[j] >= 0 {
				continue
			}
			nx := x[j] - step*grad[j]
			if nx < 0 {
				nx = 0
			} else if nx > 1 {
				nx = 1
			}
			moved += math.Abs(nx - x[j])
			x[j] = nx
		}
		if moved < 1e-12 {
			break
		}
	}
	// Guard the bound against residual optimization error.
	val := s.conv.Objective(x)
	return val - 1e-9*(1+math.Abs(val)), x
}

// BruteForce enumerates all 2^N binary points (N ≤ 26) and returns the
// feasible minimizer; used to cross-check Solve.
func BruteForce(pr *Problem) (*Solution, error) {
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	if pr.N > 26 {
		return nil, fmt.Errorf("miqp: brute force limited to 26 variables, got %d", pr.N)
	}
	best := math.Inf(1)
	var bestX []float64
	x := make([]float64, pr.N)
	total := 1 << pr.N
	for mask := 0; mask < total; mask++ {
		for j := 0; j < pr.N; j++ {
			if mask&(1<<j) != 0 {
				x[j] = 1
			} else {
				x[j] = 0
			}
		}
		if !pr.Feasible(x, feasTol) {
			continue
		}
		if obj := pr.Objective(x); obj < best {
			best = obj
			bestX = append([]float64(nil), x...)
		}
	}
	if bestX == nil {
		return &Solution{Status: Infeasible, Nodes: total}, nil
	}
	return &Solution{X: bestX, Objective: best, Status: Optimal, Nodes: total}, nil
}

// SolveOneHot is a convenience for the paper's per-lambda subproblem: a
// one-hot selection (Σx = 1) among N options with per-option quadratic
// and linear coefficients, where option j may be forbidden. It solves
// exactly by scanning and returns the chosen index, or -1 when every
// option is forbidden. Used as a fast path and as an oracle in tests.
func SolveOneHot(q, p []float64, allowed []bool) (int, float64) {
	best, bestVal := -1, math.Inf(1)
	for j := range p {
		if allowed != nil && !allowed[j] {
			continue
		}
		v := p[j]
		if q != nil {
			v += q[j]
		}
		if v < bestVal {
			best, bestVal = j, v
		}
	}
	return best, bestVal
}
