// Package optimizer implements the core of AMPS-Inf (paper Sec. 3): given
// a model's segment profile and the platform quotas, it jointly chooses
//
//   - how many partitions to create and where to cut (the y variables),
//   - which memory block each partition's lambda gets (the one-hot x
//     variables),
//
// minimizing total monetary cost (Eq. 3) subject to the deployment-size
// limit (Eq. 4), the temporary-storage limit (Eq. 5), an optional
// per-partition layer cap (Eq. 6), memory-block feasibility pruning
// (Eq. 7) and a response-time SLO.
//
// The per-lambda memory choice is the paper's 0-1 quadratic program
// (Eq. 12–14), solved through the QCR/branch-and-bound machinery of
// internal/miqp (or an exact one-hot scan fast path — both agree, which a
// test asserts). The SLO couples lambdas across a cut; as in the paper's
// Lagrangian treatment, it is dualized with a multiplier λ on total time,
// making the objective additive per partition so the optimal cut for each
// λ is found exactly by dynamic programming over segment boundaries. An
// outer bisection drives λ to the smallest feasible plan cost.
//
// The hot path is engineered around three precomputations whose outputs
// are byte-identical to the direct formulation (DESIGN.md §10): O(1)
// prefix-sum span profiling (perf.SpanProfiler), a parallel span-table
// build over the independent (a, b) cells, and a per-span lower envelope
// of the (time, cost) block frontier answering any λ in O(log L) instead
// of an O(L) rescan. A retained reference implementation of the original
// single-threaded scans backs the equivalence property tests.
package optimizer

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ampsinf/internal/cloud/pricing"
	"ampsinf/internal/nn"
	"ampsinf/internal/perf"
)

// Request describes one optimization job.
type Request struct {
	Model *nn.Model
	Perf  perf.Params
	// SLO is the response-time objective; 0 disables it (pure cost
	// minimization — the paper's Baseline 3).
	SLO time.Duration
	// MaxLambdas is K, the partition-count cap (default 16).
	MaxLambdas int
	// MaxLayersPerPartition is the paper's constraint (6); 0 disables it.
	MaxLayersPerPartition int
	// BandwidthMBps is B, the lambda↔S3 bandwidth (default 60).
	BandwidthMBps float64
	// RequestLatency is the fixed S3 round-trip latency (default 25 ms).
	RequestLatency time.Duration
	// DescBytes is the per-partition model-description size (default 256 KiB).
	DescBytes int64
	// UseBnB routes every per-lambda subproblem through the generic
	// QCR+branch-and-bound MIQP solver instead of the exact one-hot scan.
	UseBnB bool
	// Quota selects the platform limits; nil means the paper's 2020
	// quotas. Pass a pricing.Quota2021() to explore the updated platform
	// (10,240 MB in 1 MB increments).
	Quota *pricing.Quota
	// SearchStrideMB coarsens the memory-block search grid for
	// fine-grained quotas (0 = automatic: the quota's own step, but at
	// least 64 MB when the quota allows 1 MB increments).
	SearchStrideMB int
	// WeightScale scales partition weight bytes in the size and load-time
	// accounting (0 = 1.0). Weight quantization before deployment sets it
	// to quant.CompressionScale(bits).
	WeightScale float64
}

func (r *Request) fillDefaults() {
	if r.MaxLambdas <= 0 {
		r.MaxLambdas = 16
	}
	if r.Quota == nil {
		q := pricing.Quota2020()
		r.Quota = &q
	}
	if r.SearchStrideMB <= 0 {
		r.SearchStrideMB = r.Quota.MemoryStepMB
		if r.SearchStrideMB < 64 {
			r.SearchStrideMB = 64
		}
	}
	if r.BandwidthMBps <= 0 {
		r.BandwidthMBps = 60
	}
	if r.RequestLatency <= 0 {
		r.RequestLatency = 25 * time.Millisecond
	}
	if r.DescBytes <= 0 {
		r.DescBytes = 256 << 10
	}
	if r.WeightScale <= 0 {
		r.WeightScale = 1
	}
}

// LambdaPlan is one partition's provisioning decision.
type LambdaPlan struct {
	// Segment span [SegLo, SegHi) and the layer range it covers.
	SegLo, SegHi     int
	LayerLo, LayerHi int
	MemoryMB         int
	Profile          perf.SegmentProfile
	// EstTime is T_i (Eq. 2): init + load + compute + S3 transfers.
	EstTime time.Duration
	// EstCost is S_i (Eq. 3): execution + storage + request/invocation fees.
	EstCost float64
}

// Plan is the optimizer's output configuration.
type Plan struct {
	Lambdas []LambdaPlan
	// EstTime is the end-to-end response time Σ T_i.
	EstTime time.Duration
	// EstCost is the total Σ S_i.
	EstCost float64
	// LagrangeMultiplier is the final λ dualizing the SLO (0 when the
	// cost-optimal plan already meets it).
	LagrangeMultiplier float64
	// MeetsSLO reports whether EstTime ≤ SLO (always true when SLO = 0).
	MeetsSLO bool
}

// Bounds returns the plan's layer boundaries: [b0, b1, …, bk] with
// partition p covering layers [b_p, b_p+1).
func (p *Plan) Bounds() []int {
	if len(p.Lambdas) == 0 {
		return nil
	}
	bounds := make([]int, 0, len(p.Lambdas)+1)
	bounds = append(bounds, p.Lambdas[0].LayerLo)
	for _, l := range p.Lambdas {
		bounds = append(bounds, l.LayerHi)
	}
	return bounds
}

// Memories returns the per-partition memory blocks.
func (p *Plan) Memories() []int {
	ms := make([]int, len(p.Lambdas))
	for i, l := range p.Lambdas {
		ms[i] = l.MemoryMB
	}
	return ms
}

// spanChoice is the solved per-lambda subproblem for one candidate span.
type spanChoice struct {
	// capsOK reports that the span passes the λ-independent constraints
	// (4)–(6): deployment size, temporary storage and the layer cap.
	capsOK bool
	// feasible additionally requires at least one allowed memory block.
	feasible bool
	memIdx   int // λ=0 optimal index into blocks, or -1
	time     time.Duration
	cost     float64 // S_i without the position-dependent storage term
	// Span invariants for on-demand per-block evaluation (fast path):
	// working-set floor (Eq. 7), S3 transfer time and the WeightScale-
	// adjusted profile.
	minMem   int
	transfer time.Duration
	prof     perf.SegmentProfile
	// env is the lower envelope of (time, cost) over allowed blocks; the
	// Lagrangian re-weighting re-selects without re-profiling (fast path,
	// scan mode).
	env []envPoint
	// Dense per-block tables, retained by the reference path and by BnB
	// mode (the branch-and-bound oracle consumes the explicit block set).
	times []time.Duration
	costs []float64
	allow []bool
}

// Optimizer precomputes span tables for one model and answers Optimize
// calls. Create with New. An Optimizer reuses internal scratch buffers
// across bisection steps, so a single instance must not be used from
// multiple goroutines concurrently (constructing one Optimizer per
// Optimize call, as the package-level Optimize does, is always safe).
type Optimizer struct {
	req      Request
	segs     []nn.Segment
	blocks   []int
	profiler *perf.SpanProfiler
	// reference routes every solve through the retained pre-overhaul
	// implementation; equivalence tests assert byte-identical plans.
	reference bool
	// table[a][b] is the per-lambda data for the span [a, b).
	table [][]spanChoice
	// DP scratch reused across solveForLambda calls (fast path).
	dpBest   [][]float64
	dpPrev   [][]int
	dpChoice [][]int
	// Scratch for the BnB problem construction, reused across λ steps.
	bnb bnbScratch
}

// New profiles the model and precomputes the per-span decision tables.
func New(req Request) (*Optimizer, error) {
	return newOptimizer(req, false)
}

// newReference builds an Optimizer that solves everything through the
// retained reference (pre-overhaul) path. Tests compare its plans
// byte-for-byte against New's.
func newReference(req Request) (*Optimizer, error) {
	return newOptimizer(req, true)
}

func newOptimizer(req Request, reference bool) (*Optimizer, error) {
	if req.Model == nil {
		return nil, fmt.Errorf("optimizer: nil model")
	}
	req.fillDefaults()
	segs := req.Model.Segments()
	if len(segs) == 0 {
		return nil, fmt.Errorf("optimizer: model %q has no segments", req.Model.Name)
	}
	o := &Optimizer{
		req: req, segs: segs,
		blocks:    req.Quota.SearchBlocks(req.SearchStrideMB),
		profiler:  perf.NewSpanProfiler(req.Model, segs),
		reference: reference,
	}
	if reference {
		o.buildTableRef()
		return o, nil
	}
	o.buildTable()
	S := len(segs)
	K := req.MaxLambdas
	if K > S {
		K = S
	}
	o.dpBest = make([][]float64, S+1)
	o.dpPrev = make([][]int, S+1)
	o.dpChoice = make([][]int, S+1)
	for b := 0; b <= S; b++ {
		o.dpBest[b] = make([]float64, K+1)
		o.dpPrev[b] = make([]int, K+1)
		o.dpChoice[b] = make([]int, K+1)
	}
	return o, nil
}

// Segments exposes the model's atomic segments.
func (o *Optimizer) Segments() []nn.Segment { return o.segs }

// buildTable solves every candidate span. The cells are mutually
// independent — solveSpan reads only immutable state (request, blocks,
// profiler) and each result is written to its own fixed index — so the
// build fans out over a GOMAXPROCS-sized worker pool and the table is
// identical to a serial build regardless of scheduling.
func (o *Optimizer) buildTable() {
	S := len(o.segs)
	o.table = make([][]spanChoice, S)
	for a := 0; a < S; a++ {
		o.table[a] = make([]spanChoice, S+1)
	}
	type cell struct{ a, b int }
	cells := make([]cell, 0, S*(S+1)/2)
	for a := 0; a < S; a++ {
		for b := a + 1; b <= S; b++ {
			cells = append(cells, cell{a, b})
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers <= 1 {
		for _, c := range cells {
			o.table[c.a][c.b] = o.solveSpan(c.a, c.b)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cells) {
					return
				}
				c := cells[i]
				o.table[c.a][c.b] = o.solveSpan(c.a, c.b)
			}
		}()
	}
	wg.Wait()
}

// solveSpan evaluates a candidate partition covering segments [a, b):
// feasibility (Eqs. 4–7), per-block T_i and S_i, and the cost-minimal
// block (the λ=0 subproblem). The fast path profiles the span in O(1)
// and folds each allowed block straight into the lower envelope instead
// of materializing dense per-block tables; BnB mode keeps the dense
// tables the branch-and-bound oracle consumes.
func (o *Optimizer) solveSpan(a, b int) spanChoice {
	prof := o.profiler.Profile(a, b)
	// Quantization shrinks the shipped and loaded weight bytes; compute
	// is unchanged (weights are dequantized on load).
	prof.WeightsBytes = int64(float64(prof.WeightsBytes) * o.req.WeightScale)
	sc := spanChoice{memIdx: -1, prof: prof}

	// Constraint (6): per-partition layer cap.
	if cap := o.req.MaxLayersPerPartition; cap > 0 && prof.Layers > cap {
		return sc
	}
	// Constraint (4): unzipped deployment = partition package + the
	// dependency layer D + handler F must fit the platform limit.
	p := o.req.Perf
	q := o.req.Quota
	deploy := prof.DeployBytes(o.req.DescBytes) + int64(p.DepsMB*(1<<20))
	if deploy > int64(q.DeployLimitMB)<<20 {
		return sc
	}
	// Constraint (5): temporary storage during execution.
	if prof.TmpBytes() > int64(q.TmpLimitMB)<<20 {
		return sc
	}
	sc.capsOK = true

	// Constraint (7): prune memory blocks below the working-set floor —
	// a prefix of the ascending block grid, skipped without evaluation.
	sc.minMem = p.MinFeasibleMemoryMB(prof.WeightsBytes, q.MinMemoryMB, q.MemoryStepMB)
	sc.transfer = o.transferTime(prof.InBytes) + o.transferTime(prof.OutBytes)

	L := len(o.blocks)
	dense := o.req.UseBnB
	if dense {
		sc.times = make([]time.Duration, L)
		sc.costs = make([]float64, L)
		sc.allow = make([]bool, L)
	}

	eval := p.SpanEval(prof.FLOPs, prof.WeightsBytes)
	zeroIdx, zeroVal := -1, math.Inf(1)
	for j := sort.SearchInts(o.blocks, sc.minMem); j < L; j++ {
		mem := o.blocks[j]
		t := eval.Time(mem) + sc.transfer
		if t > q.Timeout {
			continue
		}
		// S_i (Eq. 3) without the position-dependent q_i·T·H storage
		// term, which is settled once the cut is known (it is orders of
		// magnitude below the decision-relevant terms).
		cost := q.ExecutionCost(mem, t) +
			pricing.LambdaInvocation + pricing.S3GetRequest + pricing.S3PutRequest
		if dense {
			sc.allow[j] = true
			sc.times[j] = t
			sc.costs[j] = cost
			continue
		}
		if cost < zeroVal {
			zeroIdx, zeroVal = j, cost
		}
		s := t.Seconds()
		if n := len(sc.env); n > 0 && s == sc.env[n-1].sec {
			// Time plateau: the same duration at more memory costs
			// strictly more (same billed time, higher GB-seconds), and
			// the earlier block also wins the scan's index tie-break.
			continue
		}
		sc.env = envPush(sc.env, envPoint{j: j, sec: s, cost: cost})
	}

	if dense {
		// BnB selects the λ=0 block through the full solver, exactly as
		// every later λ step will (fresh per-call scratch: the parallel
		// table build must not share the Optimizer's buffers).
		sc.memIdx, _ = o.selectBlockBnB(&sc, 0, nil)
	} else {
		sc.memIdx = zeroIdx
	}
	sc.feasible = sc.memIdx >= 0
	if sc.feasible {
		var ok bool
		sc.time, sc.cost, ok = o.blockTimeCost(&sc, sc.memIdx)
		if !ok {
			sc.feasible, sc.memIdx = false, -1
		}
	}
	return sc
}

func (o *Optimizer) transferTime(bytes int64) time.Duration {
	sec := float64(bytes) / (o.req.BandwidthMBps * 1024 * 1024)
	return o.req.RequestLatency + time.Duration(sec*float64(time.Second))
}

// blockTimeCost returns (T_i, S_i) for block index j of a solved span,
// serving dense tables when the span retains them and otherwise
// re-deriving the pair from the span invariants — the same float
// expressions the table build evaluated, hence the same bits.
func (o *Optimizer) blockTimeCost(sc *spanChoice, j int) (time.Duration, float64, bool) {
	if sc.times != nil {
		if j < 0 || j >= len(sc.allow) || !sc.allow[j] {
			return 0, 0, false
		}
		return sc.times[j], sc.costs[j], true
	}
	if !sc.capsOK || j < 0 || j >= len(o.blocks) {
		return 0, 0, false
	}
	mem := o.blocks[j]
	if mem < sc.minMem {
		return 0, 0, false
	}
	p := o.req.Perf
	eval := p.SpanEval(sc.prof.FLOPs, sc.prof.WeightsBytes)
	t := eval.Time(mem) + sc.transfer
	if t > o.req.Quota.Timeout {
		return 0, 0, false
	}
	cost := o.req.Quota.ExecutionCost(mem, t) +
		pricing.LambdaInvocation + pricing.S3GetRequest + pricing.S3PutRequest
	return t, cost, true
}

// selectBlock solves the per-lambda subproblem min_j cost_j + λ·time_j
// over the allowed one-hot x — the paper's Eq. (12)–(14). With UseBnB it
// constructs the explicit 0-1 quadratic program (quadratic term v·u·x²
// from price×compute, linear term from transfers and λ) and runs it
// through QCR + branch-and-bound; otherwise the span's precomputed lower
// envelope answers in O(log L). λ = 0 returns the scan argmin recorded
// at build time, where exact cost ties between blocks resolve by block
// index.
func (o *Optimizer) selectBlock(sc *spanChoice, lambda float64) (int, float64) {
	if o.req.UseBnB {
		return o.selectBlockBnB(sc, lambda, &o.bnb)
	}
	if len(sc.env) == 0 {
		return -1, math.Inf(1)
	}
	if lambda == 0 {
		return sc.memIdx, sc.cost
	}
	return envQuery(sc.env, lambda)
}

// bnbScratch holds the reusable buffers for the explicit binary-QP
// construction, so the bisection's λ steps stop allocating a fresh
// problem per span per step.
type bnbScratch struct {
	idx  []int
	rows [][]float64
	qbuf []float64
	p    []float64
	ones []float64
}

// selectBlockBnB builds the explicit binary QP over the allowed blocks
// and solves it with QCR + branch-and-bound. A nil scratch allocates
// per call (used by the parallel table build, which must not share the
// Optimizer's buffers across workers).
func (o *Optimizer) selectBlockBnB(sc *spanChoice, lambda float64, scr *bnbScratch) (int, float64) {
	if sc.allow == nil {
		return -1, math.Inf(1)
	}
	var local bnbScratch
	if scr == nil {
		scr = &local
	}
	idx := scr.idx[:0]
	for j, ok := range sc.allow {
		if ok {
			idx = append(idx, j)
		}
	}
	scr.idx = idx
	if len(idx) == 0 {
		return -1, math.Inf(1)
	}
	n := len(idx)
	if cap(scr.qbuf) < n*n {
		scr.qbuf = make([]float64, n*n)
		scr.rows = make([][]float64, 0, n)
		scr.p = make([]float64, n)
		scr.ones = make([]float64, n)
	}
	qbuf := scr.qbuf[:n*n]
	for i := range qbuf {
		qbuf[i] = 0
	}
	q := scr.rows[:0]
	pvec := scr.p[:n]
	ones := scr.ones[:n]
	for r, j := range idx {
		row := qbuf[r*n : (r+1)*n]
		// Quadratic diagonal: the v_j·u_j·x_j² execution-cost term of
		// Eq. (9). Transfers and the SLO multiplier enter linearly.
		execCost := sc.costs[j] - pricing.LambdaInvocation - pricing.S3GetRequest - pricing.S3PutRequest
		row[r] = execCost
		pvec[r] = lambda*sc.times[j].Seconds() +
			pricing.LambdaInvocation + pricing.S3GetRequest + pricing.S3PutRequest
		ones[r] = 1
		q = append(q, row)
	}
	scr.rows = q
	return solveOneHotQP(idx, q, pvec, ones)
}

type dpResult struct {
	objective float64
	bounds    []int // segment boundaries, length k+1
	memIdx    []int
}

// solveForLambda runs the boundary DP: best[b][k] = cheapest relaxed
// objective covering segments [0, b) with k partitions. The DP tables
// are Optimizer-owned scratch reused across the bisection's λ steps.
func (o *Optimizer) solveForLambda(lambda float64) (dpResult, bool) {
	if o.reference {
		return o.solveForLambdaRef(lambda)
	}
	S := len(o.segs)
	K := o.req.MaxLambdas
	if K > S {
		K = S
	}
	const inf = math.MaxFloat64
	best, prev, choice := o.dpBest, o.dpPrev, o.dpChoice
	for b := 0; b <= S; b++ {
		for k := 0; k <= K; k++ {
			best[b][k] = inf
			prev[b][k] = -1
		}
	}
	best[0][0] = 0
	for b := 1; b <= S; b++ {
		for a := 0; a < b; a++ {
			sc := &o.table[a][b]
			if !sc.feasible {
				continue
			}
			j, val := o.selectBlock(sc, lambda)
			if j < 0 {
				continue
			}
			for k := 1; k <= K; k++ {
				if best[a][k-1] == inf {
					continue
				}
				if cand := best[a][k-1] + val; cand < best[b][k] {
					best[b][k] = cand
					prev[b][k] = a
					choice[b][k] = j
				}
			}
		}
	}
	bestK, bestObj := -1, inf
	for k := 1; k <= K; k++ {
		if best[S][k] < bestObj {
			bestObj, bestK = best[S][k], k
		}
	}
	if bestK < 0 {
		return dpResult{}, false
	}
	// Reconstruct the cut.
	bounds := make([]int, bestK+1)
	mems := make([]int, bestK)
	b, k := S, bestK
	for k > 0 {
		a := prev[b][k]
		bounds[k] = b
		mems[k-1] = choice[b][k]
		b, k = a, k-1
	}
	bounds[0] = 0
	return dpResult{objective: bestObj, bounds: bounds, memIdx: mems}, true
}

// Optimize computes the plan. With no SLO it returns the exact
// cost-minimal configuration. With an SLO it first checks whether the
// cost-optimal plan already complies, and otherwise bisects the
// Lagrangian multiplier, keeping the cheapest SLO-feasible plan found.
func (o *Optimizer) Optimize() (*Plan, error) {
	res, ok := o.solveForLambda(0)
	if !ok {
		return nil, fmt.Errorf("optimizer: model %q has no feasible partitioning under the platform limits", o.req.Model.Name)
	}
	plan := o.assemble(res, 0)
	if o.req.SLO <= 0 || plan.EstTime <= o.req.SLO {
		plan.MeetsSLO = true
		return plan, nil
	}

	// Find an upper multiplier that yields a feasible (fast enough) plan.
	lo, hi := 0.0, 1e-6
	var feasiblePlan *Plan
	for iter := 0; iter < 60; iter++ {
		r, ok := o.solveForLambda(hi)
		if !ok {
			break
		}
		p := o.assemble(r, hi)
		if p.EstTime <= o.req.SLO {
			feasiblePlan = p
			break
		}
		lo = hi
		hi *= 8
	}
	if feasiblePlan == nil {
		// Even the time-greediest plans miss the SLO: return the fastest
		// plan found, flagged infeasible.
		r, ok := o.solveForLambda(hi)
		if !ok {
			r = res
		}
		p := o.assemble(r, hi)
		p.MeetsSLO = false
		return p, nil
	}
	// Bisect λ to shave cost while staying feasible.
	for iter := 0; iter < 40; iter++ {
		mid := (lo + hi) / 2
		r, ok := o.solveForLambda(mid)
		if !ok {
			break
		}
		p := o.assemble(r, mid)
		if p.EstTime <= o.req.SLO {
			hi = mid
			if p.EstCost < feasiblePlan.EstCost {
				feasiblePlan = p
			}
		} else {
			lo = mid
		}
	}
	feasiblePlan.MeetsSLO = true
	return feasiblePlan, nil
}

// assemble converts a DP result into a full Plan, adding the exact
// position-dependent S3 storage term (q_i·T_i·H of Eq. 3).
func (o *Optimizer) assemble(res dpResult, lambda float64) *Plan {
	plan := &Plan{LagrangeMultiplier: lambda}
	var qBytes int64 // Σ outputs of previous partitions held in S3
	for i := 0; i+1 < len(res.bounds); i++ {
		a, b := res.bounds[i], res.bounds[i+1]
		sc := &o.table[a][b]
		j := res.memIdx[i]
		var prof perf.SegmentProfile
		if o.reference {
			prof = perf.ProfilePartition(o.req.Model, o.segs, a, b)
		} else {
			prof = o.profiler.Profile(a, b)
		}
		lo, hi, _ := nn.SegmentRange(o.segs, a, b)
		t, base, _ := o.blockTimeCost(sc, j)
		cost := base +
			float64(qBytes)/(1<<30)*t.Seconds()*pricing.S3StoragePerGBSecond
		plan.Lambdas = append(plan.Lambdas, LambdaPlan{
			SegLo: a, SegHi: b, LayerLo: lo, LayerHi: hi,
			MemoryMB: o.blocks[j], Profile: prof,
			EstTime: t, EstCost: cost,
		})
		plan.EstTime += t
		plan.EstCost += cost
		qBytes += prof.OutBytes
	}
	return plan
}

// OptimizeCostOnly ignores any SLO and returns the exact cost-minimal
// plan (λ = 0 dynamic program) — the paper's Baseline 3.
func (o *Optimizer) OptimizeCostOnly() (*Plan, error) {
	res, ok := o.solveForLambda(0)
	if !ok {
		return nil, fmt.Errorf("optimizer: model %q has no feasible partitioning under the platform limits", o.req.Model.Name)
	}
	p := o.assemble(res, 0)
	p.MeetsSLO = o.req.SLO <= 0 || p.EstTime <= o.req.SLO
	return p, nil
}

// Optimize is the one-shot convenience: New + Optimize.
func Optimize(req Request) (*Plan, error) {
	o, err := New(req)
	if err != nil {
		return nil, err
	}
	return o.Optimize()
}

// ExhaustiveMinCost enumerates every cut (all 2^(S-1) compositions,
// S ≤ 22) with the cost-optimal block per partition — the paper's
// Baseline 3 oracle — and returns the minimal total cost. Used to verify
// that the DP is exact.
func (o *Optimizer) ExhaustiveMinCost() (float64, bool) {
	S := len(o.segs)
	if S > 22 {
		return 0, false
	}
	best := math.Inf(1)
	found := false
	// Each bitmask over S-1 boundaries defines a cut.
	for mask := 0; mask < 1<<(S-1); mask++ {
		total := 0.0
		feasible := true
		a := 0
		parts := 0
		for b := 1; b <= S; b++ {
			if b < S && mask&(1<<(b-1)) == 0 {
				continue
			}
			sc := &o.table[a][b]
			if !sc.feasible {
				feasible = false
				break
			}
			total += sc.cost
			parts++
			a = b
		}
		if feasible && parts <= o.req.MaxLambdas && total < best {
			best = total
			found = true
		}
	}
	return best, found
}
