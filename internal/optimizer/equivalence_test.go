package optimizer

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"ampsinf/internal/cloud/pricing"
	"ampsinf/internal/nn/zoo"
	"ampsinf/internal/perf"
)

// The hot-path overhaul (prefix-sum profiling, parallel table build,
// lower-envelope block selection, scratch reuse) claims byte-identical
// plans, not approximately equal ones. These tests drive the fast path
// against the retained reference implementation across models, quotas,
// SLO tightness and solver modes, demanding reflect.DeepEqual — any
// float that drifts by one ulp fails.

func equivRequest(t *testing.T, model string, quota2021 bool, useBnB bool) Request {
	t.Helper()
	m, err := zoo.Build(model, 0)
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Model: m, Perf: perf.Default(), UseBnB: useBnB}
	if quota2021 {
		q := pricing.Quota2021()
		req.Quota = &q
	}
	return req
}

func comparePlans(t *testing.T, base Request, fractions []float64, tag string) {
	t.Helper()
	ref, err := newReference(base)
	if err != nil {
		t.Fatal(err)
	}
	costOnly, refErr := ref.OptimizeCostOnly()
	if refErr != nil {
		// Both paths must agree that the model has no feasible plan.
		fastO, err := New(base)
		if err != nil {
			t.Fatal(err)
		}
		if _, fastErr := fastO.OptimizeCostOnly(); fastErr == nil {
			t.Fatalf("%s: reference infeasible (%v) but fast path found a plan", tag, refErr)
		}
		return
	}
	for _, frac := range fractions {
		req := base
		req.SLO = time.Duration(float64(costOnly.EstTime) * frac)
		fastO, err := New(req)
		if err != nil {
			t.Fatal(err)
		}
		refO, err := newReference(req)
		if err != nil {
			t.Fatal(err)
		}
		fast, err1 := fastO.Optimize()
		slow, err2 := refO.Optimize()
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s frac=%.2f: errors diverge: %v vs %v", tag, frac, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if !reflect.DeepEqual(fast, slow) {
			t.Errorf("%s frac=%.2f: plans differ\nfast: %+v\nref:  %+v", tag, frac, fast, slow)
		}
	}
}

func TestFastMatchesReferencePlans(t *testing.T) {
	models := []string{"tinycnn", "linearnet", "tinytransformer", "vgg16", "resnet50"}
	// SLO as a fraction of the cost-optimal plan's time: 0 disables the
	// SLO, mid-range fractions force the bisection, and a near-zero
	// fraction drives the unattainable branch (MeetsSLO = false).
	fractions := []float64{0, 0.95, 0.7, 0.45, 0.01}
	for _, model := range models {
		for _, quota2021 := range []bool{false, true} {
			base := equivRequest(t, model, quota2021, false)
			comparePlans(t, base, fractions, fmt.Sprintf("%s quota2021=%v", model, quota2021))
		}
	}
}

func TestFastMatchesReferencePlansBnB(t *testing.T) {
	// The branch-and-bound oracle costs a full QCR solve per (span, λ)
	// pair on both paths, so the BnB matrix stays small: tiny models on
	// a coarsened 2020 grid (the equivalence argument is independent of
	// block count), one SLO that exercises the bisection.
	for _, model := range []string{"tinycnn", "linearnet"} {
		base := equivRequest(t, model, false, true)
		base.SearchStrideMB = 256
		comparePlans(t, base, []float64{0, 0.7}, model+" bnb")
	}
}

func TestFastMatchesReferenceConfigAPIs(t *testing.T) {
	// The fast path drops the dense per-block tables, so the config
	// helpers re-derive block values on demand; they must agree with the
	// reference's stored tables bit-for-bit.
	for _, quota2021 := range []bool{false, true} {
		req := equivRequest(t, "vgg16", quota2021, false)
		fastO, err := New(req)
		if err != nil {
			t.Fatal(err)
		}
		refO, err := newReference(req)
		if err != nil {
			t.Fatal(err)
		}
		S := len(fastO.Segments())
		for a := 0; a < S; a++ {
			for b := a + 1; b <= S; b++ {
				if got, want := fastO.SpanFeasible(a, b), refO.SpanFeasible(a, b); got != want {
					t.Fatalf("SpanFeasible(%d,%d): %v vs %v", a, b, got, want)
				}
				fm, rm := fastO.FeasibleMemories(a, b), refO.FeasibleMemories(a, b)
				if !reflect.DeepEqual(fm, rm) {
					t.Fatalf("FeasibleMemories(%d,%d): %v vs %v", a, b, fm, rm)
				}
				for _, mem := range fm {
					t1, c1, err1 := fastO.SpanEstimate(a, b, mem)
					t2, c2, err2 := refO.SpanEstimate(a, b, mem)
					if err1 != nil || err2 != nil || t1 != t2 || c1 != c2 {
						t.Fatalf("SpanEstimate(%d,%d,%d): (%v,%v,%v) vs (%v,%v,%v)",
							a, b, mem, t1, c1, err1, t2, c2, err2)
					}
				}
			}
		}
	}
}

func TestEnvelopeMatchesExactScan(t *testing.T) {
	// For every feasible span and a sweep of randomized multipliers, the
	// envelope query must return exactly the block index and objective
	// value of the reference's full scan (fresh objective slice +
	// lowest-index argmin).
	rng := rand.New(rand.NewSource(7))
	for _, model := range []string{"tinycnn", "vgg16", "resnet50"} {
		for _, quota2021 := range []bool{false, true} {
			req := equivRequest(t, model, quota2021, false)
			fastO, err := New(req)
			if err != nil {
				t.Fatal(err)
			}
			refO, err := newReference(req)
			if err != nil {
				t.Fatal(err)
			}
			S := len(fastO.Segments())
			lambdas := []float64{0, 1e-9, 1e-6, 1e-3, 0.1, 5, 1e3}
			for i := 0; i < 40; i++ {
				lambdas = append(lambdas, math.Exp(rng.Float64()*30-12))
			}
			for a := 0; a < S; a++ {
				for b := a + 1; b <= S; b++ {
					fsc := &fastO.table[a][b]
					rsc := refO.table[a][b]
					if !fsc.feasible {
						continue
					}
					for _, lambda := range lambdas {
						gj, gv := fastO.selectBlock(fsc, lambda)
						wj, wv := refO.selectBlockRef(rsc, lambda)
						if gj != wj || gv != wv {
							t.Fatalf("%s quota2021=%v span [%d,%d) λ=%g: envelope (%d, %v) vs scan (%d, %v)",
								model, quota2021, a, b, lambda, gj, gv, wj, wv)
						}
					}
				}
			}
		}
	}
}
