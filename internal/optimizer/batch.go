package optimizer

import (
	"fmt"
	"math"
	"time"

	"ampsinf/internal/cloud/pricing"
)

// BatchOption is the evaluation of serving the planned partitioning with
// batched invocations of one fixed size: every request in the batch
// shares the partition chain's init and weight-load work, activations
// scale with the batch dimension, and compute follows the marginal
// batching model (perf.BatchFLOPs).
type BatchOption struct {
	// Batch is the invocation batch size this option evaluates.
	Batch int
	// EstTime is the end-to-end response time of one batched invocation
	// (every member of the batch completes at this instant).
	EstTime time.Duration
	// EstCost is the total invoice of one batched invocation across the
	// partition chain.
	EstCost float64
	// CostPerRequest is EstCost amortized over the batch members — the
	// quantity batching exists to minimize.
	CostPerRequest float64
	// MeetsSLO reports EstTime ≤ SLO (always true when the request set
	// no SLO).
	MeetsSLO bool
}

// BatchPlan is the batch-size co-plan for a partitioning plan.
type BatchPlan struct {
	// Options holds one entry per feasible batch size in ascending
	// order. Sizes that blow the memory block's temporary storage, the
	// platform timeout or the per-block working set are omitted.
	Options []BatchOption
	// Chosen is the recommended batch size: the cheapest per-request
	// option among those meeting the SLO (smaller size on exact ties),
	// falling back to the cheapest overall, then to 1.
	Chosen int
}

// Option returns the evaluation for batch size b, or nil if b was
// infeasible (or out of the evaluated range).
func (bp *BatchPlan) Option(b int) *BatchOption {
	for i := range bp.Options {
		if bp.Options[i].Batch == b {
			return &bp.Options[i]
		}
	}
	return nil
}

// CoPlanBatch co-plans the invocation batch size against the plan's
// memory blocks and the request's SLO (tentpole: the optimizer decides
// not just where to cut and how much memory to buy, but how many queued
// requests one invocation should carry). For each candidate size B it
// re-evaluates every partition at its already-chosen memory block —
// batched activations multiply the S3 transfers and the temporary
// storage footprint, compute grows by the marginal-batching model while
// init and weight load are shared — and keeps the sizes that still fit
// the block (Eq. 5's storage limit, the platform timeout, the working
// set floor). Chosen is the feasible size with the lowest per-request
// cost among SLO-compliant options. Batch size 1 reproduces the plan's
// own EstTime/EstCost, so a co-plan always has at least one option.
func (o *Optimizer) CoPlanBatch(plan *Plan, maxBatch int) (*BatchPlan, error) {
	if plan == nil || len(plan.Lambdas) == 0 {
		return nil, fmt.Errorf("optimizer: co-plan needs a non-empty plan")
	}
	if maxBatch < 1 {
		maxBatch = 1
	}
	p := o.req.Perf
	q := o.req.Quota
	bp := &BatchPlan{}
	for B := 1; B <= maxBatch; B++ {
		opt := BatchOption{Batch: B}
		feasible := true
		var qBytes int64 // Σ batched outputs of previous partitions in S3
		for _, l := range plan.Lambdas {
			prof := l.Profile
			prof.WeightsBytes = int64(float64(prof.WeightsBytes) * o.req.WeightScale)
			in := prof.InBytes * int64(B)
			out := prof.OutBytes * int64(B)
			peak := prof.PeakActBytes * int64(B)
			// The memory block was bought for batch 1; a larger batch
			// must still fit its working set and the temp-storage limit.
			if prof.WeightsBytes+in+peak > int64(q.TmpLimitMB)<<20 {
				feasible = false
				break
			}
			if p.MinFeasibleMemoryMB(prof.WeightsBytes+peak, q.MinMemoryMB, q.MemoryStepMB) > l.MemoryMB {
				feasible = false
				break
			}
			t := p.EndToEndTime(l.MemoryMB, p.BatchFLOPs(prof.FLOPs, B), prof.WeightsBytes) +
				o.transferTime(in) + o.transferTime(out)
			if t > q.Timeout {
				feasible = false
				break
			}
			cost := q.ExecutionCost(l.MemoryMB, t) +
				pricing.LambdaInvocation + pricing.S3GetRequest + pricing.S3PutRequest +
				float64(qBytes)/(1<<30)*t.Seconds()*pricing.S3StoragePerGBSecond
			opt.EstTime += t
			opt.EstCost += cost
			qBytes += out
		}
		if !feasible {
			continue
		}
		opt.CostPerRequest = opt.EstCost / float64(B)
		opt.MeetsSLO = o.req.SLO <= 0 || opt.EstTime <= o.req.SLO
		bp.Options = append(bp.Options, opt)
	}
	bp.Chosen = chooseBatch(bp.Options)
	return bp, nil
}

// chooseBatch picks the cheapest per-request SLO-meeting option,
// preferring smaller batches on exact ties; if nothing meets the SLO it
// degrades to cheapest-overall, and to 1 with no options at all.
func chooseBatch(opts []BatchOption) int {
	chosen, best := 0, math.Inf(1)
	for _, opt := range opts {
		if opt.MeetsSLO && opt.CostPerRequest < best {
			chosen, best = opt.Batch, opt.CostPerRequest
		}
	}
	if chosen > 0 {
		return chosen
	}
	for _, opt := range opts {
		if opt.CostPerRequest < best {
			chosen, best = opt.Batch, opt.CostPerRequest
		}
	}
	if chosen > 0 {
		return chosen
	}
	return 1
}

// Clamp returns the largest feasible evaluated batch size not above b
// (1 when nothing larger fits): serving layers use it to keep a
// requested batch size inside the co-plan's memory-block and timeout
// feasibility.
func (bp *BatchPlan) Clamp(b int) int {
	best := 1
	for _, opt := range bp.Options {
		if opt.Batch <= b && opt.Batch > best {
			best = opt.Batch
		}
	}
	return best
}

// CoPlanBatch is the one-shot convenience mirroring Optimize: it builds
// the optimizer, computes the plan and co-plans the batch size in one
// call, returning both.
func CoPlanBatch(req Request, maxBatch int) (*Plan, *BatchPlan, error) {
	o, err := New(req)
	if err != nil {
		return nil, nil, err
	}
	plan, err := o.Optimize()
	if err != nil {
		return nil, nil, err
	}
	bp, err := o.CoPlanBatch(plan, maxBatch)
	if err != nil {
		return nil, nil, err
	}
	return plan, bp, nil
}
