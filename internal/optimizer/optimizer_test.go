package optimizer

import (
	"math"
	"testing"
	"time"

	"ampsinf/internal/cloud/pricing"
	"ampsinf/internal/nn/zoo"
	"ampsinf/internal/perf"
)

func request(model string) Request {
	m, err := zoo.Build(model, 0)
	if err != nil {
		panic(err)
	}
	return Request{Model: m, Perf: perf.Default()}
}

func TestOptimizeTinyCNNSingleLambda(t *testing.T) {
	// TinyCNN fits one lambda; the cost-optimal plan should not split it
	// (splitting adds invocation + transfer costs with no benefit).
	plan, err := Optimize(request("tinycnn"))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Lambdas) != 1 {
		t.Fatalf("tinycnn plan uses %d lambdas, want 1", len(plan.Lambdas))
	}
	if !plan.MeetsSLO {
		t.Fatal("no-SLO plan must report MeetsSLO")
	}
	if plan.EstCost <= 0 || plan.EstTime <= 0 {
		t.Fatalf("degenerate estimates: %v / %v", plan.EstCost, plan.EstTime)
	}
}

func TestOptimizeResNet50MustPartition(t *testing.T) {
	// ResNet50's 98 MB of weights + 169 MB dependencies exceed 250 MB:
	// every feasible plan uses ≥ 2 lambdas (the paper's Table 1 premise).
	plan, err := Optimize(request("resnet50"))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Lambdas) < 2 {
		t.Fatalf("resnet50 plan uses %d lambdas; deployment limit requires ≥2", len(plan.Lambdas))
	}
	// Every partition respects the deployment limit.
	p := perf.Default()
	for i, l := range plan.Lambdas {
		deploy := l.Profile.DeployBytes(256<<10) + int64(p.DepsMB*(1<<20))
		if deploy > int64(pricing.LambdaDeployLimitMB)<<20 {
			t.Errorf("partition %d deployment %d MB over limit", i, deploy>>20)
		}
		if l.Profile.TmpBytes() > int64(pricing.LambdaTmpLimitMB)<<20 {
			t.Errorf("partition %d tmp %d MB over limit", i, l.Profile.TmpBytes()>>20)
		}
		if !pricingValidBlock(l.MemoryMB) {
			t.Errorf("partition %d memory %d not a valid block", i, l.MemoryMB)
		}
	}
	// Bounds must partition the layer range contiguously.
	bounds := plan.Bounds()
	if bounds[0] != 1 || bounds[len(bounds)-1] != len(request("resnet50").Model.Layers) {
		t.Fatalf("bounds %v do not cover the model", bounds)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("bounds %v not increasing", bounds)
		}
	}
}

func pricingValidBlock(mem int) bool {
	return mem >= 128 && mem <= 3008 && (mem-128)%64 == 0
}

func TestDPMatchesExhaustive(t *testing.T) {
	for _, name := range []string{"tinycnn", "linearnet"} {
		o, err := New(request(name))
		if err != nil {
			t.Fatal(err)
		}
		want, ok := o.ExhaustiveMinCost()
		if !ok {
			t.Fatalf("%s: exhaustive enumeration unavailable (%d segments)", name, len(o.Segments()))
		}
		plan, err := o.Optimize()
		if err != nil {
			t.Fatal(err)
		}
		// Compare without the tiny storage term the DP defers.
		var got float64
		for _, l := range plan.Lambdas {
			_, cost, err := o.SpanEstimate(l.SegLo, l.SegHi, l.MemoryMB)
			if err != nil {
				t.Fatal(err)
			}
			got += cost
		}
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Errorf("%s: DP cost %.9f vs exhaustive %.9f", name, got, want)
		}
	}
}

func indexOfBlock(blocks []int, mem int) int {
	for i, b := range blocks {
		if b == mem {
			return i
		}
	}
	return -1
}

func TestSLOReducesTimeAtHigherCost(t *testing.T) {
	req := request("resnet50")
	unconstrained, err := Optimize(req)
	if err != nil {
		t.Fatal(err)
	}
	// Demand 13% faster than the cost-optimal plan (achievable: larger
	// memory blocks buy speed, at a price).
	req.SLO = time.Duration(float64(unconstrained.EstTime) * 0.87)
	constrained, err := Optimize(req)
	if err != nil {
		t.Fatal(err)
	}
	if !constrained.MeetsSLO {
		t.Fatalf("SLO %v not met (plan time %v)", req.SLO, constrained.EstTime)
	}
	if constrained.EstTime > req.SLO {
		t.Fatalf("plan time %v exceeds SLO %v", constrained.EstTime, req.SLO)
	}
	if constrained.EstCost < unconstrained.EstCost {
		t.Fatalf("SLO plan cheaper (%.6f) than unconstrained optimum (%.6f)",
			constrained.EstCost, unconstrained.EstCost)
	}
	if constrained.LagrangeMultiplier <= 0 {
		t.Fatal("binding SLO must produce a positive multiplier")
	}
}

func TestGenerousSLOKeepsCostOptimum(t *testing.T) {
	req := request("mobilenet")
	base, _ := Optimize(req)
	req.SLO = base.EstTime * 10
	withSLO, err := Optimize(req)
	if err != nil {
		t.Fatal(err)
	}
	if withSLO.EstCost != base.EstCost {
		t.Fatalf("generous SLO changed cost: %.6f vs %.6f", withSLO.EstCost, base.EstCost)
	}
	if withSLO.LagrangeMultiplier != 0 {
		t.Fatal("non-binding SLO should leave λ = 0")
	}
}

func TestImpossibleSLOFlagged(t *testing.T) {
	req := request("resnet50")
	req.SLO = time.Millisecond
	plan, err := Optimize(req)
	if err != nil {
		t.Fatal(err)
	}
	if plan.MeetsSLO {
		t.Fatal("1 ms SLO reported as met")
	}
}

func TestMaxLambdasRespected(t *testing.T) {
	req := request("resnet50")
	req.MaxLambdas = 2
	plan, err := Optimize(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Lambdas) > 2 {
		t.Fatalf("plan uses %d lambdas, cap 2", len(plan.Lambdas))
	}
}

func TestMaxLayersPerPartition(t *testing.T) {
	req := request("mobilenet")
	base, _ := Optimize(req)
	maxLayers := 0
	for _, l := range base.Lambdas {
		if n := l.LayerHi - l.LayerLo; n > maxLayers {
			maxLayers = n
		}
	}
	req.MaxLayersPerPartition = maxLayers / 2
	plan, err := Optimize(req)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range plan.Lambdas {
		if n := l.LayerHi - l.LayerLo; n > req.MaxLayersPerPartition {
			t.Fatalf("partition %d has %d layers, cap %d", i, n, req.MaxLayersPerPartition)
		}
	}
}

func TestBnBPathMatchesScanPath(t *testing.T) {
	reqScan := request("tinycnn")
	reqBnB := request("tinycnn")
	reqBnB.UseBnB = true
	a, err := Optimize(reqScan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Optimize(reqBnB)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.EstCost-b.EstCost) > 1e-9 {
		t.Fatalf("scan %.9f vs BnB %.9f", a.EstCost, b.EstCost)
	}
	am, bm := a.Memories(), b.Memories()
	if len(am) != len(bm) {
		t.Fatalf("different partition counts: %v vs %v", am, bm)
	}
	for i := range am {
		if am[i] != bm[i] {
			t.Fatalf("different memories: %v vs %v", am, bm)
		}
	}
}

func TestVGG16InfeasibleSingleLayerTooBig(t *testing.T) {
	// VGG16's fc1 weights alone (≈392 MB) exceed any partition's
	// deployment budget; the optimizer must report infeasibility rather
	// than emit a broken plan.
	_, err := Optimize(request("vgg16"))
	if err == nil {
		t.Fatal("VGG16 should be infeasible under the 250 MB limit (paper Sec. 1: VGG-class models)")
	}
}

func TestPlanPerLambdaEstimatesSum(t *testing.T) {
	plan, err := Optimize(request("inceptionv3"))
	if err != nil {
		t.Fatal(err)
	}
	var tsum time.Duration
	var csum float64
	for _, l := range plan.Lambdas {
		tsum += l.EstTime
		csum += l.EstCost
	}
	if tsum != plan.EstTime {
		t.Fatalf("times do not sum: %v vs %v", tsum, plan.EstTime)
	}
	if math.Abs(csum-plan.EstCost) > 1e-12 {
		t.Fatalf("costs do not sum: %v vs %v", csum, plan.EstCost)
	}
}
