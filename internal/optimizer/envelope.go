package optimizer

// The per-lambda subproblem min_j cost_j + λ·time_j over the allowed
// memory blocks is a minimization of linear functions of λ: block j is
// the line f_j(λ) = cost_j + sec_j·λ. Instead of rescanning all L blocks
// for every λ the bisection visits (the pre-overhaul planner's dominant
// cost on the 10k-block 2021 grid), each span precomputes the lower
// envelope of its lines once and answers any λ ≥ 0 by binary search.
//
// Byte-identity with the exact scan is preserved by construction:
//
//   - envelope entries keep the block index, the exact cost_j float and
//     the exact times_j.Seconds() float the scan would use, and the
//     query evaluates the very same expression cost + λ·sec;
//   - entries stay ordered by ascending block index and the query
//     returns the leftmost minimum of the (convex) value sequence, which
//     mirrors the scan's lowest-index tie-break;
//   - lines are removed only when strictly above the envelope (collinear
//     ties are kept), so every scan argmin candidate remains present;
//   - λ = 0 — where exact cost ties between blocks are genuinely
//     possible (cost is memory × billed time, and e.g. 512 MB × 200 ms
//     equals 1024 MB × 100 ms bit-for-bit) — bypasses the envelope
//     entirely: solveSpan records the scan's own λ=0 argmin.
//
// A property test drives the envelope against the retained exact scan
// across randomized multipliers.

// envPoint is one line of a span's lower envelope.
type envPoint struct {
	j    int     // index into Optimizer.blocks
	sec  float64 // times[j].Seconds(), the line's slope in λ
	cost float64 // costs[j], the line's intercept
}

// envPush appends a candidate line, popping previous lines that the new
// one makes strictly unnecessary. Lines arrive with strictly decreasing
// slope (ascending block index ⇒ more memory ⇒ strictly faster after
// time-plateau dedup), the precondition for the O(1) amortized hull
// update. With s1 > s2 > s3, the middle line is strictly unnecessary iff
// the new line overtakes line 1 strictly before line 2 does:
// (c3−c1)(s1−s2) < (c2−c1)(s1−s3), both factors on the slope side
// positive. Ties (collinear lines) are kept so exact-equality argmins
// stay available to the leftmost-minimum query.
func envPush(env []envPoint, pt envPoint) []envPoint {
	for len(env) >= 2 {
		l1, l2 := env[len(env)-2], env[len(env)-1]
		if (pt.cost-l1.cost)*(l1.sec-l2.sec) < (l2.cost-l1.cost)*(l1.sec-pt.sec) {
			env = env[:len(env)-1]
			continue
		}
		break
	}
	return append(env, pt)
}

// envQuery returns the block index and objective value minimizing
// cost + λ·sec over the envelope, for λ > 0. The value sequence along
// the envelope is convex in the entry order, so the leftmost minimum is
// found by binary search on the first non-negative forward difference;
// leftmost resolves exact value ties to the smallest block index, the
// scan's tie-break.
func envQuery(env []envPoint, lambda float64) (int, float64) {
	lo, hi := 0, len(env)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if env[mid].cost+lambda*env[mid].sec <= env[mid+1].cost+lambda*env[mid+1].sec {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return env[lo].j, env[lo].cost + lambda*env[lo].sec
}
