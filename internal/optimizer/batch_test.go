package optimizer

import (
	"testing"
	"time"

	"ampsinf/internal/nn/zoo"
	"ampsinf/internal/perf"
)

func TestCoPlanBatchSizeOneMatchesPlan(t *testing.T) {
	o, err := New(Request{Model: zoo.TinyCNN(0), Perf: perf.Default(), MaxLayersPerPartition: 4})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := o.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	bp, err := o.CoPlanBatch(plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(bp.Options) != 1 {
		t.Fatalf("maxBatch 1 produced %d options", len(bp.Options))
	}
	one := bp.Option(1)
	if one == nil {
		t.Fatal("no batch-1 option")
	}
	// Batch 1 re-evaluates the same per-block expressions the plan was
	// priced with, so the pair must agree bit for bit.
	if one.EstTime != plan.EstTime {
		t.Fatalf("batch-1 time %v != plan time %v", one.EstTime, plan.EstTime)
	}
	if one.EstCost != plan.EstCost {
		t.Fatalf("batch-1 cost %v != plan cost %v", one.EstCost, plan.EstCost)
	}
	if one.CostPerRequest != one.EstCost {
		t.Fatalf("batch-1 cost/request %v != cost %v", one.CostPerRequest, one.EstCost)
	}
	if bp.Chosen != 1 {
		t.Fatalf("chosen %d, want 1", bp.Chosen)
	}
}

func TestCoPlanBatchAmortizesCost(t *testing.T) {
	o, err := New(Request{Model: zoo.TinyCNN(0), Perf: perf.Default(), MaxLayersPerPartition: 4})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := o.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	bp, err := o.CoPlanBatch(plan, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(bp.Options) == 0 {
		t.Fatal("no feasible options")
	}
	one := bp.Option(1)
	if one == nil {
		t.Fatal("batch 1 must always be feasible for a feasible plan")
	}
	prevBatch := 0
	for _, opt := range bp.Options {
		if opt.Batch <= prevBatch {
			t.Fatalf("options not in ascending batch order: %d after %d", opt.Batch, prevBatch)
		}
		prevBatch = opt.Batch
		if opt.Batch > 1 {
			// Shared init and weight-load amortize: larger batches take
			// longer per invocation but cost less per request.
			if opt.EstTime <= one.EstTime {
				t.Fatalf("batch %d time %v not above batch-1 time %v", opt.Batch, opt.EstTime, one.EstTime)
			}
			if opt.CostPerRequest >= one.CostPerRequest {
				t.Fatalf("batch %d cost/request %v not below batch-1 %v", opt.Batch, opt.CostPerRequest, one.CostPerRequest)
			}
		}
	}
	// With no SLO every option complies, so the chosen size is the
	// global per-request cost minimum.
	chosen := bp.Option(bp.Chosen)
	if chosen == nil {
		t.Fatalf("chosen size %d has no option", bp.Chosen)
	}
	for _, opt := range bp.Options {
		if opt.CostPerRequest < chosen.CostPerRequest {
			t.Fatalf("batch %d at %v beats chosen %d at %v",
				opt.Batch, opt.CostPerRequest, bp.Chosen, chosen.CostPerRequest)
		}
	}
	if bp.Chosen <= 1 {
		t.Fatalf("amortization should favor batching, chose %d", bp.Chosen)
	}
}

func TestCoPlanBatchRespectsSLO(t *testing.T) {
	o, err := New(Request{Model: zoo.TinyCNN(0), Perf: perf.Default(), MaxLayersPerPartition: 4})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := o.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	wide, err := o.CoPlanBatch(plan, 8)
	if err != nil {
		t.Fatal(err)
	}
	one := wide.Option(1)

	// Re-plan with an SLO that only batch 1 can meet: the co-plan must
	// back off to the unbatched invocation even though it is the most
	// expensive per request.
	tight, err := New(Request{
		Model: zoo.TinyCNN(0), Perf: perf.Default(), MaxLayersPerPartition: 4,
		SLO: one.EstTime + time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	tplan, err := tight.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	tbp, err := tight.CoPlanBatch(tplan, 8)
	if err != nil {
		t.Fatal(err)
	}
	chosen := tbp.Option(tbp.Chosen)
	if chosen == nil || !chosen.MeetsSLO {
		t.Fatalf("chosen batch %d does not meet the SLO", tbp.Chosen)
	}
	for _, opt := range tbp.Options {
		if opt.MeetsSLO && opt.CostPerRequest < chosen.CostPerRequest {
			t.Fatalf("SLO-meeting batch %d at %v beats chosen %d", opt.Batch, opt.CostPerRequest, tbp.Chosen)
		}
	}
}

func TestCoPlanBatchFallsBackWhenNothingFits(t *testing.T) {
	o, err := New(Request{Model: zoo.TinyCNN(0), Perf: perf.Default(), MaxLayersPerPartition: 4})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := o.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	// Doctor the plan onto blocks far below the working-set floor: no
	// batch size fits, and the co-plan degrades to the safe size 1.
	broken := *plan
	broken.Lambdas = append([]LambdaPlan(nil), plan.Lambdas...)
	for i := range broken.Lambdas {
		broken.Lambdas[i].MemoryMB = 128
	}
	bp, err := o.CoPlanBatch(&broken, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(bp.Options) != 0 {
		t.Fatalf("infeasible blocks still produced %d options", len(bp.Options))
	}
	if bp.Chosen != 1 {
		t.Fatalf("fallback chose %d, want 1", bp.Chosen)
	}

	if _, err := o.CoPlanBatch(nil, 4); err == nil {
		t.Fatal("nil plan accepted")
	}
	// Non-positive maxBatch clamps to 1 instead of erroring.
	bp, err = o.CoPlanBatch(plan, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bp.Chosen != 1 || len(bp.Options) != 1 {
		t.Fatalf("clamped co-plan = %+v", bp)
	}
}

func TestBatchPlanClamp(t *testing.T) {
	bp := &BatchPlan{Options: []BatchOption{{Batch: 1}, {Batch: 2}, {Batch: 4}}}
	for _, c := range []struct{ ask, want int }{
		{8, 4}, {4, 4}, {3, 2}, {2, 2}, {1, 1}, {0, 1}, {-5, 1},
	} {
		if got := bp.Clamp(c.ask); got != c.want {
			t.Fatalf("Clamp(%d) = %d, want %d", c.ask, got, c.want)
		}
	}
	empty := &BatchPlan{}
	if got := empty.Clamp(16); got != 1 {
		t.Fatalf("empty Clamp = %d, want 1", got)
	}
}

func TestCoPlanBatchOneShot(t *testing.T) {
	plan, bp, err := CoPlanBatch(Request{Model: zoo.TinyCNN(0), Perf: perf.Default(), MaxLayersPerPartition: 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil || len(plan.Lambdas) == 0 {
		t.Fatal("one-shot returned no plan")
	}
	if bp == nil || bp.Chosen < 1 || bp.Chosen > 4 {
		t.Fatalf("one-shot co-plan = %+v", bp)
	}
}
