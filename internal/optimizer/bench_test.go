package optimizer

import (
	"testing"
	"time"

	"ampsinf/internal/cloud/pricing"
)

// The paper reports the optimizer overhead as "within a few seconds on a
// laptop"; these benches measure our reproduction's planning cost.

func BenchmarkNewResNet50(b *testing.B) {
	req := request("resnet50")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimizeCostOnly(b *testing.B) {
	o, err := New(request("resnet50"))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.OptimizeCostOnly(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimizeWithBindingSLO(b *testing.B) {
	req := request("resnet50")
	base, err := Optimize(req)
	if err != nil {
		b.Fatal(err)
	}
	req.SLO = time.Duration(float64(base.EstTime) * 0.88)
	o, err := New(req)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.Optimize(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizeQuota2021Stride1 plans ResNet50 on the fine-grained
// December-2020 quota grid (10,240 MB in 1 MB steps → ~10k memory
// blocks) with a binding SLO, the worst case the ROADMAP's Figure-10
// sweep extension hits: every λ-bisection step re-solves the per-span
// block selection over the full grid.
func BenchmarkOptimizeQuota2021Stride1(b *testing.B) {
	req := stride1Request(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o, err := New(req)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := o.Optimize(); err != nil {
			b.Fatal(err)
		}
	}
}

// stride1Request builds the ~10k-block request with an SLO 12% under the
// cost-optimal plan's response time, so Optimize has to bisect λ.
func stride1Request(b *testing.B) Request {
	b.Helper()
	req := request("resnet50")
	q := pricing.Quota2021()
	req.Quota = &q
	req.SearchStrideMB = 1
	o, err := New(req)
	if err != nil {
		b.Fatal(err)
	}
	base, err := o.OptimizeCostOnly()
	if err != nil {
		b.Fatal(err)
	}
	req.SLO = time.Duration(float64(base.EstTime) * 0.88)
	return req
}

func BenchmarkOptimizeBnBPath(b *testing.B) {
	req := request("tinycnn")
	req.UseBnB = true
	o, err := New(req)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.Optimize(); err != nil {
			b.Fatal(err)
		}
	}
}
