package optimizer

import (
	"testing"
	"time"
)

// The paper reports the optimizer overhead as "within a few seconds on a
// laptop"; these benches measure our reproduction's planning cost.

func BenchmarkNewResNet50(b *testing.B) {
	req := request("resnet50")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimizeCostOnly(b *testing.B) {
	o, err := New(request("resnet50"))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.OptimizeCostOnly(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimizeWithBindingSLO(b *testing.B) {
	req := request("resnet50")
	base, err := Optimize(req)
	if err != nil {
		b.Fatal(err)
	}
	req.SLO = time.Duration(float64(base.EstTime) * 0.88)
	o, err := New(req)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.Optimize(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimizeBnBPath(b *testing.B) {
	req := request("tinycnn")
	req.UseBnB = true
	o, err := New(req)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.Optimize(); err != nil {
			b.Fatal(err)
		}
	}
}
