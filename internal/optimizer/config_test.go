package optimizer

import (
	"testing"
	"time"

	"ampsinf/internal/cloud/pricing"
)

func newOpt(t *testing.T, model string) *Optimizer {
	t.Helper()
	o, err := New(request(model))
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestFeasibleMemoriesSortedAndValid(t *testing.T) {
	o := newOpt(t, "mobilenet")
	S := len(o.Segments())
	ms := o.FeasibleMemories(0, S)
	if len(ms) == 0 {
		t.Fatal("no feasible memories for whole mobilenet")
	}
	for i, m := range ms {
		if !pricing.Quota2020().ValidMemory(m) {
			t.Fatalf("memory %d invalid", m)
		}
		if i > 0 && ms[i] <= ms[i-1] {
			t.Fatal("memories not increasing")
		}
	}
	// The paper's x-axis: MobileNet's floor is 256 MB.
	if ms[0] != 256 {
		t.Fatalf("mobilenet min feasible block %d, want 256", ms[0])
	}
	if o.FeasibleMemories(-1, 2) != nil || o.FeasibleMemories(2, 1) != nil {
		t.Fatal("invalid spans returned memories")
	}
}

func TestMinFeasibleBlock(t *testing.T) {
	o := newOpt(t, "mobilenet")
	S := len(o.Segments())
	mb, err := o.MinFeasibleBlock(0, S)
	if err != nil || mb != 256 {
		t.Fatalf("min feasible = %d, %v", mb, err)
	}
}

func TestSpanEstimateConsistency(t *testing.T) {
	o := newOpt(t, "mobilenet")
	S := len(o.Segments())
	t1024, c1024, err := o.SpanEstimate(0, S, 1024)
	if err != nil {
		t.Fatal(err)
	}
	t512, c512, err := o.SpanEstimate(0, S, 512)
	if err != nil {
		t.Fatal(err)
	}
	if t512 <= t1024 {
		t.Fatal("512 MB not slower than 1024 MB")
	}
	if c512 <= 0 || c1024 <= 0 {
		t.Fatal("non-positive costs")
	}
	if _, _, err := o.SpanEstimate(0, S, 100); err == nil {
		t.Fatal("invalid block accepted")
	}
	if _, _, err := o.SpanEstimate(0, S, 128); err == nil {
		t.Fatal("infeasibly small block accepted")
	}
}

func TestSpanFeasibleBounds(t *testing.T) {
	o := newOpt(t, "resnet50")
	S := len(o.Segments())
	if o.SpanFeasible(-1, 1) || o.SpanFeasible(0, S+1) || o.SpanFeasible(3, 3) {
		t.Fatal("invalid spans reported feasible")
	}
	// The whole ResNet50 cannot be one partition (Table 1).
	if o.SpanFeasible(0, S) {
		t.Fatal("whole resnet50 reported deployable on one lambda")
	}
}

func TestWeightScaleMakesVGGFeasible(t *testing.T) {
	req := request("vgg16")
	if _, err := Optimize(req); err == nil {
		t.Fatal("float vgg16 should be infeasible")
	}
	req.WeightScale = 0.145 // 4-bit
	plan, err := Optimize(req)
	if err != nil {
		t.Fatalf("scaled vgg16 infeasible: %v", err)
	}
	if len(plan.Lambdas) < 1 {
		t.Fatal("empty plan")
	}
}

func TestQuota2021Plan(t *testing.T) {
	req := request("resnet50")
	q := pricing.Quota2021()
	req.Quota = &q
	plan, err := Optimize(req)
	if err != nil {
		t.Fatal(err)
	}
	for _, mem := range plan.Memories() {
		if !q.ValidMemory(mem) {
			t.Fatalf("memory %d invalid under 2021 quota", mem)
		}
	}
	// Cost-optimal plan under a strictly larger decision space cannot be
	// worse than under 2020 (same 64 MB search grid plus the max block).
	base, err := Optimize(request("resnet50"))
	if err != nil {
		t.Fatal(err)
	}
	if plan.EstCost > base.EstCost*1.001 {
		t.Fatalf("2021 plan costlier: %.6f vs %.6f", plan.EstCost, base.EstCost)
	}
}

func TestSearchStrideRespected(t *testing.T) {
	req := request("mobilenet")
	q := pricing.Quota2021()
	req.Quota = &q
	req.SearchStrideMB = 512
	o, err := New(req)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := o.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	for _, mem := range plan.Memories() {
		if (mem-128)%512 != 0 && mem != 10240 {
			t.Fatalf("memory %d off the 512 MB search grid", mem)
		}
	}
}

func TestPlanForConfigMatchesSpanEstimates(t *testing.T) {
	o := newOpt(t, "mobilenet")
	S := len(o.Segments())
	plan, err := o.PlanForConfig([]int{0, S}, []int{1024})
	if err != nil {
		t.Fatal(err)
	}
	wantT, wantC, _ := o.SpanEstimate(0, S, 1024)
	if plan.EstTime != wantT {
		t.Fatalf("plan time %v vs span %v", plan.EstTime, wantT)
	}
	// Plan adds only the (tiny) storage term for the first partition (0).
	if diff := plan.EstCost - wantC; diff < 0 || diff > 1e-9 {
		t.Fatalf("plan cost %v vs span %v", plan.EstCost, wantC)
	}
}

func TestProfileSpanAndModelAccessors(t *testing.T) {
	o := newOpt(t, "tinycnn")
	S := len(o.Segments())
	prof := o.ProfileSpan(0, S)
	if prof.FLOPs != o.Model().TotalFLOPs() {
		t.Fatal("whole-span profile flops mismatch")
	}
	if MaxMemoryBlock() != 3008 {
		t.Fatalf("max block %d", MaxMemoryBlock())
	}
}

func TestTightSLOBuysTimeMonotonically(t *testing.T) {
	// Over a ladder of SLOs, plan time must be non-increasing and cost
	// non-decreasing (the optimizer's core trade-off).
	base, err := Optimize(request("inceptionv3"))
	if err != nil {
		t.Fatal(err)
	}
	prevTime := base.EstTime
	prevCost := base.EstCost
	for _, f := range []float64{0.97, 0.94, 0.91, 0.88} {
		req := request("inceptionv3")
		req.SLO = time.Duration(float64(base.EstTime) * f)
		p, err := Optimize(req)
		if err != nil {
			t.Fatal(err)
		}
		if !p.MeetsSLO {
			break // beyond the feasible frontier
		}
		if p.EstTime > prevTime+time.Millisecond {
			t.Fatalf("factor %.2f: time went up (%v → %v)", f, prevTime, p.EstTime)
		}
		if p.EstCost < prevCost-1e-12 {
			t.Fatalf("factor %.2f: cost went down (%.6f → %.6f)", f, prevCost, p.EstCost)
		}
		prevTime, prevCost = p.EstTime, p.EstCost
	}
}
