package optimizer

import (
	"fmt"
	"time"

	"ampsinf/internal/cloud/pricing"
	"ampsinf/internal/nn"
	"ampsinf/internal/perf"
)

// PlanForConfig builds a Plan from an explicit configuration — segment
// boundaries and per-partition memory blocks — validating platform
// feasibility. Baselines and manual deployments use this to flow through
// the same estimation and deployment machinery as the optimizer's own
// plans. segBounds must start at 0 and end at the segment count;
// memories has one block per partition.
func (o *Optimizer) PlanForConfig(segBounds []int, memories []int) (*Plan, error) {
	S := len(o.segs)
	if len(segBounds) < 2 || segBounds[0] != 0 || segBounds[len(segBounds)-1] != S {
		return nil, fmt.Errorf("optimizer: segment bounds %v must span [0, %d]", segBounds, S)
	}
	if len(memories) != len(segBounds)-1 {
		return nil, fmt.Errorf("optimizer: %d memories for %d partitions", len(memories), len(segBounds)-1)
	}
	res := dpResult{bounds: segBounds}
	for i, mem := range memories {
		a, b := segBounds[i], segBounds[i+1]
		if a >= b {
			return nil, fmt.Errorf("optimizer: empty partition %d", i)
		}
		sc := &o.table[a][b]
		if !sc.capsOK {
			return nil, fmt.Errorf("optimizer: partition %d (segments [%d, %d)) violates the platform limits", i, a, b)
		}
		j := -1
		for k, block := range o.blocks {
			if block == mem {
				j = k
				break
			}
		}
		if j < 0 {
			return nil, fmt.Errorf("optimizer: %d MB is not a valid memory block", mem)
		}
		if _, _, ok := o.blockTimeCost(sc, j); !ok {
			return nil, fmt.Errorf("optimizer: %d MB is infeasible for partition %d (working set or timeout)", mem, i)
		}
		res.memIdx = append(res.memIdx, j)
	}
	return o.assemble(res, 0), nil
}

// FeasibleMemories returns the memory blocks allowed for the partition
// covering segments [a, b), or nil when the span itself is infeasible.
func (o *Optimizer) FeasibleMemories(a, b int) []int {
	if a < 0 || b > len(o.segs) || a >= b {
		return nil
	}
	sc := &o.table[a][b]
	if !sc.capsOK {
		return nil
	}
	var out []int
	for j := range o.blocks {
		if _, _, ok := o.blockTimeCost(sc, j); ok {
			out = append(out, o.blocks[j])
		}
	}
	return out
}

// SpanFeasible reports whether segments [a, b) can form a partition at
// all (deployment, temp storage, layer cap, ≥1 feasible block).
func (o *Optimizer) SpanFeasible(a, b int) bool {
	if a < 0 || b > len(o.segs) || a >= b {
		return false
	}
	return o.table[a][b].feasible
}

// SpanEstimate returns (T_i, S_i) for segments [a, b) at the given block,
// excluding the position-dependent storage term.
func (o *Optimizer) SpanEstimate(a, b, memMB int) (time.Duration, float64, error) {
	sc := &o.table[a][b]
	for j, block := range o.blocks {
		if block == memMB {
			t, cost, ok := o.blockTimeCost(sc, j)
			if !ok {
				return 0, 0, fmt.Errorf("optimizer: %d MB infeasible for span [%d, %d)", memMB, a, b)
			}
			return t, cost, nil
		}
	}
	return 0, 0, fmt.Errorf("optimizer: invalid block %d MB", memMB)
}

// MinFeasibleBlock returns the smallest allowed block for the span.
func (o *Optimizer) MinFeasibleBlock(a, b int) (int, error) {
	ms := o.FeasibleMemories(a, b)
	if len(ms) == 0 {
		return 0, fmt.Errorf("optimizer: span [%d, %d) infeasible", a, b)
	}
	return ms[0], nil
}

// MaxMemoryBlock returns the largest platform block (3008 MB in 2020).
func MaxMemoryBlock() int { return pricing.LambdaMaxMemoryMB }

// ProfileSpan exposes the span profile used by the tables (for reporting).
func (o *Optimizer) ProfileSpan(a, b int) perf.SegmentProfile {
	return perf.ProfilePartition(o.req.Model, o.segs, a, b)
}

// Model returns the optimizer's model.
func (o *Optimizer) Model() *nn.Model { return o.req.Model }
