package optimizer

// This file retains the pre-overhaul planner implementation verbatim:
// serial table build, O(span) profiling through perf.ProfilePartition,
// and a full per-block rescan (fresh objective slice or fresh BnB
// problem) on every λ step. It is not a fallback — newReference routes
// all solves through it so the equivalence property tests can assert
// that the overhauled hot path (prefix-sum profiling, parallel build,
// lower-envelope selection, scratch reuse) produces byte-identical
// Plans. Keep any behavioral change here in lockstep with a matching
// change to the fast path, or the equivalence tests will say so.

import (
	"math"
	"time"

	"ampsinf/internal/cloud/pricing"
	"ampsinf/internal/miqp"
	"ampsinf/internal/perf"
)

func (o *Optimizer) buildTableRef() {
	S := len(o.segs)
	o.table = make([][]spanChoice, S)
	for a := 0; a < S; a++ {
		o.table[a] = make([]spanChoice, S+1)
		for b := a + 1; b <= S; b++ {
			o.table[a][b] = o.solveSpanRef(a, b)
		}
	}
}

// solveSpanRef is the original solveSpan: dense per-block tables filled
// by a direct scan. It additionally records the span invariants the
// shared config helpers read (capsOK, minMem, transfer, prof); those do
// not influence the solve.
func (o *Optimizer) solveSpanRef(a, b int) spanChoice {
	prof := perf.ProfilePartition(o.req.Model, o.segs, a, b)
	prof.WeightsBytes = int64(float64(prof.WeightsBytes) * o.req.WeightScale)
	sc := spanChoice{memIdx: -1, prof: prof}

	if cap := o.req.MaxLayersPerPartition; cap > 0 && prof.Layers > cap {
		return sc
	}
	p := o.req.Perf
	q := o.req.Quota
	deploy := prof.DeployBytes(o.req.DescBytes) + int64(p.DepsMB*(1<<20))
	if deploy > int64(q.DeployLimitMB)<<20 {
		return sc
	}
	if prof.TmpBytes() > int64(q.TmpLimitMB)<<20 {
		return sc
	}
	sc.capsOK = true

	minMem := p.MinFeasibleMemoryMB(prof.WeightsBytes, q.MinMemoryMB, q.MemoryStepMB)
	sc.minMem = minMem

	L := len(o.blocks)
	sc.times = make([]time.Duration, L)
	sc.costs = make([]float64, L)
	sc.allow = make([]bool, L)

	transfer := o.transferTime(prof.InBytes) + o.transferTime(prof.OutBytes)
	sc.transfer = transfer
	for j, mem := range o.blocks {
		if mem < minMem {
			continue
		}
		t := p.EndToEndTime(mem, prof.FLOPs, prof.WeightsBytes) + transfer
		if t > q.Timeout {
			continue
		}
		cost := q.ExecutionCost(mem, t) +
			pricing.LambdaInvocation + pricing.S3GetRequest + pricing.S3PutRequest
		sc.allow[j] = true
		sc.times[j] = t
		sc.costs[j] = cost
	}

	sc.memIdx, _ = o.selectBlockRef(sc, 0)
	sc.feasible = sc.memIdx >= 0
	if sc.feasible {
		sc.time = sc.times[sc.memIdx]
		sc.cost = sc.costs[sc.memIdx]
	}
	return sc
}

// selectBlockRef is the original selectBlock: a fresh objective slice
// and exact one-hot scan per call, or a freshly constructed BnB problem.
func (o *Optimizer) selectBlockRef(sc spanChoice, lambda float64) (int, float64) {
	if sc.allow == nil {
		return -1, math.Inf(1)
	}
	if !o.req.UseBnB {
		obj := make([]float64, len(sc.costs))
		for j := range obj {
			obj[j] = sc.costs[j] + lambda*sc.times[j].Seconds()
		}
		return miqp.SolveOneHot(nil, obj, sc.allow)
	}
	var idx []int
	for j, ok := range sc.allow {
		if ok {
			idx = append(idx, j)
		}
	}
	if len(idx) == 0 {
		return -1, math.Inf(1)
	}
	n := len(idx)
	q := make([][]float64, n)
	pvec := make([]float64, n)
	ones := make([]float64, n)
	for r, j := range idx {
		q[r] = make([]float64, n)
		execCost := sc.costs[j] - pricing.LambdaInvocation - pricing.S3GetRequest - pricing.S3PutRequest
		q[r][r] = execCost
		pvec[r] = lambda*sc.times[j].Seconds() +
			pricing.LambdaInvocation + pricing.S3GetRequest + pricing.S3PutRequest
		ones[r] = 1
	}
	return solveOneHotQP(idx, q, pvec, ones)
}

// solveOneHotQP runs the constructed binary QP (Σx = 1) through
// QCR + branch-and-bound and maps the winning row back to its block
// index. Shared by the reference path and the scratch-reusing fast
// path — the solver sees identical values either way.
func solveOneHotQP(idx []int, q [][]float64, pvec, ones []float64) (int, float64) {
	pr := &miqp.Problem{
		N: len(idx), Q: q, P: pvec,
		Eq: []miqp.LinConstraint{{A: ones, B: 1}},
	}
	sol, err := miqp.Solve(pr, miqp.Options{})
	if err != nil || sol.Status != miqp.Optimal {
		return -1, math.Inf(1)
	}
	for r, j := range idx {
		if sol.X[r] > 0.5 {
			return j, sol.Objective
		}
	}
	return -1, math.Inf(1)
}

// solveForLambdaRef is the original solveForLambda: freshly allocated
// DP tables and a selectBlockRef rescan for every (span, λ) pair.
func (o *Optimizer) solveForLambdaRef(lambda float64) (dpResult, bool) {
	S := len(o.segs)
	K := o.req.MaxLambdas
	if K > S {
		K = S
	}
	const inf = math.MaxFloat64
	best := make([][]float64, S+1)
	prev := make([][]int, S+1)
	choice := make([][]int, S+1)
	for b := 0; b <= S; b++ {
		best[b] = make([]float64, K+1)
		prev[b] = make([]int, K+1)
		choice[b] = make([]int, K+1)
		for k := range best[b] {
			best[b][k] = inf
			prev[b][k] = -1
		}
	}
	best[0][0] = 0
	for b := 1; b <= S; b++ {
		for a := 0; a < b; a++ {
			sc := o.table[a][b]
			if !sc.feasible {
				continue
			}
			j, val := o.selectBlockRef(sc, lambda)
			if j < 0 {
				continue
			}
			for k := 1; k <= K; k++ {
				if best[a][k-1] == inf {
					continue
				}
				if cand := best[a][k-1] + val; cand < best[b][k] {
					best[b][k] = cand
					prev[b][k] = a
					choice[b][k] = j
				}
			}
		}
	}
	bestK, bestObj := -1, inf
	for k := 1; k <= K; k++ {
		if best[S][k] < bestObj {
			bestObj, bestK = best[S][k], k
		}
	}
	if bestK < 0 {
		return dpResult{}, false
	}
	bounds := make([]int, bestK+1)
	mems := make([]int, bestK)
	b, k := S, bestK
	for k > 0 {
		a := prev[b][k]
		bounds[k] = b
		mems[k-1] = choice[b][k]
		b, k = a, k-1
	}
	bounds[0] = 0
	return dpResult{objective: bestObj, bounds: bounds, memIdx: mems}, true
}
