# Verification entry points. `make verify` is the full pre-merge gate
# (formatting, vet, build, tests under the race detector); `make test`
# is the quick tier-1 check.

GO ?= go

.PHONY: verify test race fmt vet build fuzz

verify: fmt vet build race

test:
	$(GO) build ./... && $(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# Short fuzz pass over the tensor wire-format decoder.
fuzz:
	$(GO) test ./internal/modelfmt/ -fuzz FuzzDecodeTensor -fuzztime 15s
