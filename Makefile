# Verification entry points. `make verify` is the full pre-merge gate
# (formatting, vet, build, tests under the race detector); `make test`
# is the quick tier-1 check.

GO ?= go
# One pass per benchmark keeps `make bench` to ~half a minute; raise to
# e.g. BENCHTIME=1s for statistically steadier baselines.
BENCHTIME ?= 1x

.PHONY: verify test race fmt vet build staticcheck chaos fuzz bench bench-diff cover

verify: fmt vet staticcheck build race

test:
	$(GO) build ./... && $(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Static analysis beyond vet. Skips with a notice when the binary is
# not on PATH (offline sandboxes); CI installs it and always runs it.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# Chaos smoke: the resilience and pipelining×batching ladders at a 60%
# base fault rate with 8× correlated storms, plus two 100k-request
# streaming storms through the discrete-event core — sequential, and
# pipelined+batched with full telemetry (handle-path writes, lean
# report recycling) — under the race detector, so the
# hedge/breaker/deadline/shed paths, the staged scheduler's batch
# coalescing and the event-heap/slab pool reuse are exercised together
# on every push.
chaos:
	$(GO) test -race -run 'TestChaosStormSmoke|TestChaosPipelineBatch|TestChaosSim|TestChaosDomainStorm' ./internal/experiments/

build:
	$(GO) build ./...

# Run every benchmark and write the machine-readable baseline used to
# spot performance regressions (cmd/benchjson normalizes the output).
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime=$(BENCHTIME) ./... | $(GO) run ./cmd/benchjson > BENCH_baseline.json
	@echo "wrote BENCH_baseline.json"

# Re-run every benchmark and print the per-benchmark ns/op and B/op
# delta against the committed baseline. Informational: wall-clock noise
# varies by machine, so this never fails the build.
bench-diff:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime=$(BENCHTIME) ./... | $(GO) run ./cmd/benchjson -diff BENCH_baseline.json

# Same diff, but exit non-zero if any benchmark's req/s throughput
# falls more than BENCH_GATE_PCT percent below the committed baseline,
# or its allocs/op grows more than BENCH_ALLOC_GATE_PCT percent above
# it. The throughput gate is loose on purpose: single-iteration
# wall-clock on shared CI runners is noisy, so only order-of-magnitude
# regressions (a hot path quietly de-optimized) should trip it. The
# alloc gate can be much tighter because alloc counts are
# deterministic, not wall-clock noise.
BENCH_GATE_PCT ?= 75
BENCH_ALLOC_GATE_PCT ?= 25
bench-gate:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime=$(BENCHTIME) ./... | $(GO) run ./cmd/benchjson -diff BENCH_baseline.json -fail-below-pct $(BENCH_GATE_PCT) -fail-allocs-above-pct $(BENCH_ALLOC_GATE_PCT)

# Per-package coverage report. Fails if any internal package ships with
# no test files at all — every subsystem must carry its own tests.
cover:
	@untested=$$($(GO) list -f '{{if and (eq (len .TestGoFiles) 0) (eq (len .XTestGoFiles) 0)}}{{.ImportPath}}{{end}}' ./internal/...); \
	if [ -n "$$untested" ]; then \
		echo "packages with no test files:" >&2; echo "$$untested" >&2; exit 1; \
	fi
	$(GO) test -cover ./...

# Short fuzz pass over the tensor wire-format decoder.
fuzz:
	$(GO) test ./internal/modelfmt/ -fuzz FuzzDecodeTensor -fuzztime 15s
