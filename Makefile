# Verification entry points. `make verify` is the full pre-merge gate
# (formatting, vet, build, tests under the race detector); `make test`
# is the quick tier-1 check.

GO ?= go
# One pass per benchmark keeps `make bench` to ~half a minute; raise to
# e.g. BENCHTIME=1s for statistically steadier baselines.
BENCHTIME ?= 1x

.PHONY: verify test race fmt vet build fuzz bench

verify: fmt vet build race

test:
	$(GO) build ./... && $(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# Run every benchmark and write the machine-readable baseline used to
# spot performance regressions (cmd/benchjson normalizes the output).
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime=$(BENCHTIME) ./... | $(GO) run ./cmd/benchjson > BENCH_baseline.json
	@echo "wrote BENCH_baseline.json"

# Short fuzz pass over the tensor wire-format decoder.
fuzz:
	$(GO) test ./internal/modelfmt/ -fuzz FuzzDecodeTensor -fuzztime 15s
