// Package ampsinf reproduces "AMPS-Inf: Automatic Model Partitioning for
// Serverless Inference with Cost Efficiency" (ICPP 2021) as a
// self-contained Go system: a neural-network IR and model zoo, simulated
// AWS Lambda/S3/Step Functions/SageMaker substrates calibrated to the
// paper's 2020 measurements, the MIQP-based partitioning/provisioning
// optimizer, the deployment coordinator, every baseline the paper
// compares against, and a harness that regenerates each table and figure
// of the evaluation.
//
// Start with internal/core for the user-facing framework API, DESIGN.md
// for the system inventory, and EXPERIMENTS.md for paper-vs-measured
// results.
package ampsinf
