module ampsinf

go 1.22
