// Command benchjson converts `go test -bench` text output (read from
// stdin) into a stable JSON document, so benchmark baselines can be
// committed and diffed. Results are keyed by package and benchmark
// name, sorted, with every reported metric — ns/op, B/op, allocs/op
// and custom b.ReportMetric units alike — in a sorted metrics map.
//
// With -diff it instead compares the fresh run on stdin against a
// committed baseline JSON and prints a per-benchmark Δ% table for
// ns/op and B/op (`make bench-diff` wires this against
// BENCH_baseline.json). Adding -fail-below-pct N turns the diff into a
// regression gate: any benchmark whose req/s dropped more than N% below
// the baseline fails the run with a non-zero exit. -fail-allocs-above-pct
// M likewise fails the run when any benchmark's allocs/op grew more than
// M% above the baseline (`make bench-gate` wires both).
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson > BENCH_baseline.json
//	go test -run '^$' -bench . -benchmem ./... | benchjson -diff BENCH_baseline.json
//	go test -run '^$' -bench . -benchmem ./... | benchjson -diff BENCH_baseline.json -fail-below-pct 20
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Pkg        string `json:"pkg"`
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// Metrics maps unit → value (e.g. "ns/op" → 12345.0).
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is the whole baseline file.
type Doc struct {
	GoOS       string   `json:"goos,omitempty"`
	GoArch     string   `json:"goarch,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	diffBase := flag.String("diff", "", "compare stdin against this baseline JSON instead of emitting JSON")
	failBelowPct := flag.Float64("fail-below-pct", 0,
		"with -diff: exit non-zero when any benchmark's req/s drops more than this percentage below the baseline")
	failAllocsPct := flag.Float64("fail-allocs-above-pct", 0,
		"with -diff: exit non-zero when any benchmark's allocs/op grows more than this percentage above the baseline")
	flag.Parse()

	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	if *diffBase != "" {
		base, err := readBaseline(*diffBase)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		regressed := writeDiff(os.Stdout, base, doc, *failBelowPct, *failAllocsPct)
		if len(regressed) > 0 {
			for _, line := range regressed {
				fmt.Fprintf(os.Stderr, "benchjson: %s\n", line)
			}
			os.Exit(1)
		}
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func readBaseline(path string) (*Doc, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var doc Doc
	if err := json.NewDecoder(f).Decode(&doc); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return &doc, nil
}

// writeDiff prints one line per benchmark of the fresh run, with the
// baseline → current value and Δ% for ns/op and B/op. Benchmarks
// missing from either side are reported, never silently dropped. When
// failBelowPct > 0, every benchmark whose req/s dropped more than that
// percentage below the baseline is returned as a regression; when
// failAllocsPct > 0, so is every benchmark whose allocs/op grew more
// than that percentage above the baseline (an alloc-count jump is a hot
// path quietly de-optimized, even when throughput survives it).
func writeDiff(w io.Writer, base, cur *Doc, failBelowPct, failAllocsPct float64) (regressed []string) {
	baseline := make(map[string]Result, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		baseline[r.Pkg+" "+r.Name] = r
	}
	seen := make(map[string]bool, len(cur.Benchmarks))
	for _, r := range cur.Benchmarks {
		key := r.Pkg + " " + r.Name
		seen[key] = true
		old, ok := baseline[key]
		if !ok {
			fmt.Fprintf(w, "%-64s (not in baseline)\n", key)
			continue
		}
		cells := fmt.Sprintf("%s  %s",
			deltaCell("ns/op", old.Metrics, r.Metrics),
			deltaCell("B/op", old.Metrics, r.Metrics))
		// Serving throughput benchmarks also report wall-clock req/s;
		// surface the delta when either side carries the metric.
		ov, inOld := old.Metrics["req/s"]
		cv, inCur := r.Metrics["req/s"]
		if inOld || inCur {
			cells += "  " + deltaCell("req/s", old.Metrics, r.Metrics)
		}
		if failBelowPct > 0 && inOld && inCur && ov > 0 {
			if pct := (cv - ov) / ov * 100; pct < -failBelowPct {
				regressed = append(regressed, fmt.Sprintf(
					"%s: req/s %.0f→%.0f (%.1f%% below baseline, limit %.1f%%)",
					key, ov, cv, -pct, failBelowPct))
			}
		}
		av, inOldA := old.Metrics["allocs/op"]
		bv, inCurA := r.Metrics["allocs/op"]
		if failAllocsPct > 0 && inOldA && inCurA && av > 0 {
			if pct := (bv - av) / av * 100; pct > failAllocsPct {
				regressed = append(regressed, fmt.Sprintf(
					"%s: allocs/op %.0f→%.0f (%.1f%% above baseline, limit %.1f%%)",
					key, av, bv, pct, failAllocsPct))
			}
		}
		fmt.Fprintf(w, "%-64s %s\n", key, cells)
	}
	// Stable order for vanished benchmarks (cur is already sorted).
	var gone []string
	for _, r := range base.Benchmarks {
		if key := r.Pkg + " " + r.Name; !seen[key] {
			gone = append(gone, key)
		}
	}
	sort.Strings(gone)
	for _, key := range gone {
		fmt.Fprintf(w, "%-64s (missing from this run)\n", key)
	}
	return regressed
}

// deltaCell formats one metric as "unit old→new (Δ%)"; a missing metric
// on either side renders as n/a.
func deltaCell(unit string, old, cur map[string]float64) string {
	ov, okOld := old[unit]
	cv, okCur := cur[unit]
	if !okOld || !okCur {
		return fmt.Sprintf("%s n/a", unit)
	}
	if ov == 0 {
		return fmt.Sprintf("%s %.0f→%.0f", unit, ov, cv)
	}
	pct := (cv - ov) / ov * 100
	sign := "+"
	if pct < 0 {
		sign = "-"
	}
	return fmt.Sprintf("%s %.0f→%.0f (%s%.1f%%)", unit, ov, cv, sign, math.Abs(pct))
}

func parse(sc *bufio.Scanner) (*Doc, error) {
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	doc := &Doc{}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			r, ok := parseBench(line)
			if !ok {
				continue
			}
			r.Pkg = pkg
			doc.Benchmarks = append(doc.Benchmarks, r)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(doc.Benchmarks, func(i, j int) bool {
		a, b := doc.Benchmarks[i], doc.Benchmarks[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		return a.Name < b.Name
	})
	return doc, nil
}

// parseBench decodes one result line:
//
//	BenchmarkName-8   100   12345 ns/op   67 B/op   8 allocs/op   1.5 sim-s
func parseBench(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	// Strip the -GOMAXPROCS suffix so baselines compare across machines.
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	r := Result{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}
