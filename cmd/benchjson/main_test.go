package main

import (
	"bufio"
	"strings"
	"testing"
)

const benchText = `goos: linux
goarch: amd64
pkg: example.com/pkg
BenchmarkFast-4   100   2000 ns/op   512 B/op   4 allocs/op
BenchmarkSlow-4    10   9000 ns/op   256 B/op   2 allocs/op
PASS
`

func parseText(t *testing.T, text string) *Doc {
	t.Helper()
	doc, err := parse(bufio.NewScanner(strings.NewReader(text)))
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestParseBenchLines(t *testing.T) {
	doc := parseText(t, benchText)
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(doc.Benchmarks))
	}
	r := doc.Benchmarks[0]
	if r.Pkg != "example.com/pkg" || r.Name != "BenchmarkFast" {
		t.Fatalf("unexpected first result %+v", r)
	}
	if r.Metrics["ns/op"] != 2000 || r.Metrics["B/op"] != 512 || r.Metrics["allocs/op"] != 4 {
		t.Fatalf("unexpected metrics %v", r.Metrics)
	}
}

func TestWriteDiff(t *testing.T) {
	base := parseText(t, benchText)
	cur := parseText(t, `pkg: example.com/pkg
BenchmarkFast-4   100   1000 ns/op   128 B/op   4 allocs/op
BenchmarkNew-4    100   5000 ns/op   64 B/op   1 allocs/op
PASS
`)
	var sb strings.Builder
	writeDiff(&sb, base, cur, 0, 0)
	out := sb.String()
	for _, want := range []string{
		"BenchmarkFast",
		"ns/op 2000→1000 (-50.0%)",
		"B/op 512→128 (-75.0%)",
		"BenchmarkNew",
		"(not in baseline)",
		"BenchmarkSlow",
		"(missing from this run)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("diff output missing %q:\n%s", want, out)
		}
	}
}

func TestFailBelowPct(t *testing.T) {
	base := parseText(t, `pkg: example.com/pkg
BenchmarkStorm-4   1   1000 ns/op   100000 req/s
PASS
`)
	cur := parseText(t, `pkg: example.com/pkg
BenchmarkStorm-4   1   1000 ns/op   70000 req/s
PASS
`)
	var sb strings.Builder
	if reg := writeDiff(&sb, base, cur, 20, 0); len(reg) != 1 {
		t.Fatalf("want 1 regression at 20%% gate, got %v", reg)
	} else if !strings.Contains(reg[0], "30.0% below baseline") {
		t.Fatalf("unexpected regression message %q", reg[0])
	}
	if reg := writeDiff(&sb, base, cur, 40, 0); len(reg) != 0 {
		t.Fatalf("want no regression at 40%% gate, got %v", reg)
	}
	if reg := writeDiff(&sb, base, cur, 0, 0); len(reg) != 0 {
		t.Fatalf("gate off must never regress, got %v", reg)
	}
}

func TestFailAllocsAbovePct(t *testing.T) {
	base := parseText(t, `pkg: example.com/pkg
BenchmarkHot-4   100   1000 ns/op   512 B/op   8 allocs/op
PASS
`)
	cur := parseText(t, `pkg: example.com/pkg
BenchmarkHot-4   100   900 ns/op   512 B/op   12 allocs/op
PASS
`)
	var sb strings.Builder
	// 8 → 12 allocs/op is +50%: trips a 25% gate even though ns/op improved.
	if reg := writeDiff(&sb, base, cur, 0, 25); len(reg) != 1 {
		t.Fatalf("want 1 regression at 25%% allocs gate, got %v", reg)
	} else if !strings.Contains(reg[0], "allocs/op 8→12 (50.0% above baseline") {
		t.Fatalf("unexpected regression message %q", reg[0])
	}
	if reg := writeDiff(&sb, base, cur, 0, 60); len(reg) != 0 {
		t.Fatalf("want no regression at 60%% allocs gate, got %v", reg)
	}
	if reg := writeDiff(&sb, base, cur, 0, 0); len(reg) != 0 {
		t.Fatalf("allocs gate off must never regress, got %v", reg)
	}
	// Both gates can trip on the same run and report independently.
	base2 := parseText(t, `pkg: example.com/pkg
BenchmarkStorm-4   1   1000 ns/op   8 allocs/op   100000 req/s
PASS
`)
	cur2 := parseText(t, `pkg: example.com/pkg
BenchmarkStorm-4   1   1000 ns/op   20 allocs/op   40000 req/s
PASS
`)
	if reg := writeDiff(&sb, base2, cur2, 50, 25); len(reg) != 2 {
		t.Fatalf("want both gates tripped, got %v", reg)
	}
}

func TestDeltaCellMissingMetric(t *testing.T) {
	if got := deltaCell("ns/op", map[string]float64{}, map[string]float64{"ns/op": 1}); got != "ns/op n/a" {
		t.Fatalf("got %q", got)
	}
	if got := deltaCell("B/op", map[string]float64{"B/op": 100}, map[string]float64{"B/op": 125}); got != "B/op 100→125 (+25.0%)" {
		t.Fatalf("got %q", got)
	}
}
