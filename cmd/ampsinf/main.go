// Command ampsinf is the framework's CLI: inspect models, compute
// partitioning/provisioning plans, and serve inference jobs on the
// simulated serverless platform.
//
// Usage:
//
//	ampsinf models
//	ampsinf summary -model resnet50
//	ampsinf plan    -model resnet50 [-slo 30s] [-max-lambdas 16]
//	ampsinf infer   -model mobilenet [-slo 12s] [-images 3] [-sequential] [-real]
//	                [-trace trace.json] [-metrics metrics.json] [-spans spans.json]
//	ampsinf sweep   -model mobilenet [-trace trace.json] [-metrics metrics.json]
//	ampsinf serve   -model mobilenet [-requests 100] [-pattern poisson|uniform|burst]
//	                [-pipeline 4] [-batch 4|-batch -1] [-batch-window 1s]
//	                [-rate 5] [-limit 1000] [-sequential] [-full]
//	                [-budget 12] [-budget-earn 0.25] [-fallback-bits 4]
//	                [-brownout] [-brownout-p99 2s] [-brownout-bad 0.25]
//	                [-domains 3] [-domain-outage-every 250s] [-domain-outage-length 60s]
//	                [-sample-rate 0.1] [-metrics-window 1s]
//	                [-http :9090] [-stream stream.ndjson]
//	                [-trace trace.json] [-metrics metrics.json] [-spans spans.json]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"ampsinf/internal/cloud/billing"
	"ampsinf/internal/cloud/faults"
	"ampsinf/internal/cloud/lambda"
	"ampsinf/internal/cloud/pricing"
	"ampsinf/internal/cloud/s3"
	"ampsinf/internal/coordinator"
	"ampsinf/internal/core"
	"ampsinf/internal/nn"
	"ampsinf/internal/nn/zoo"
	"ampsinf/internal/obs"
	"ampsinf/internal/optimizer"
	"ampsinf/internal/perf"
	"ampsinf/internal/prof"
	"ampsinf/internal/serving"
	"ampsinf/internal/tensor"
	"ampsinf/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "models":
		for _, n := range zoo.Names() {
			fmt.Println(n)
		}
	case "summary":
		err = cmdSummary(os.Args[2:])
	case "plan":
		err = cmdPlan(os.Args[2:])
	case "infer":
		err = cmdInfer(os.Args[2:])
	case "sweep":
		err = cmdSweep(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ampsinf:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ampsinf <models|summary|plan|infer|sweep|serve> [flags]")
}

func buildModel(name string) (*nn.Model, error) {
	return zoo.Build(name, 0)
}

// profileFlags registers -cpuprofile/-memprofile on fs. The returned
// start function runs after fs.Parse; its stop function must be
// deferred so the profiles flush on exit.
func profileFlags(fs *flag.FlagSet) func() (func(), error) {
	cpu := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	mem := fs.String("memprofile", "", "write a pprof heap profile to this file on exit")
	return func() (func(), error) {
		stop, err := prof.Start(*cpu, *mem)
		if err != nil {
			return nil, err
		}
		return func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "ampsinf:", err)
			}
		}, nil
	}
}

func cmdSummary(args []string) error {
	fs := flag.NewFlagSet("summary", flag.ExitOnError)
	model := fs.String("model", "mobilenet", "zoo model name")
	fs.Parse(args)
	m, err := buildModel(*model)
	if err != nil {
		return err
	}
	fmt.Print(m.Summary())
	segs := m.Segments()
	fmt.Printf("Cut segments: %d (valid split points for serverless partitioning)\n", len(segs))
	return nil
}

func cmdPlan(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	model := fs.String("model", "resnet50", "zoo model name")
	slo := fs.Duration("slo", 0, "response-time SLO (0 = cost-optimal)")
	maxLambdas := fs.Int("max-lambdas", 16, "partition cap (K)")
	useBnB := fs.Bool("bnb", false, "use the QCR+branch-and-bound MIQP path")
	startProf := profileFlags(fs)
	fs.Parse(args)
	stopProf, err := startProf()
	if err != nil {
		return err
	}
	defer stopProf()

	m, err := buildModel(*model)
	if err != nil {
		return err
	}
	start := time.Now()
	plan, err := optimizer.Optimize(optimizer.Request{
		Model: m, Perf: perf.Default(), SLO: *slo,
		MaxLambdas: *maxLambdas, UseBnB: *useBnB,
	})
	if err != nil {
		return err
	}
	fmt.Printf("model %s: %d layers, %.0f MB weights, %.2f GFLOPs\n",
		m.Name, m.NumLayers(), float64(m.WeightBytes())/(1<<20), float64(m.TotalFLOPs())/1e9)
	fmt.Printf("plan computed in %v (paper: \"a few seconds on a laptop\")\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("partitions: %d   est. response %.2fs   est. cost $%.6f   SLO met: %v\n",
		len(plan.Lambdas), plan.EstTime.Seconds(), plan.EstCost, plan.MeetsSLO)
	for i, l := range plan.Lambdas {
		fmt.Printf("  λ%d: layers [%d, %d)  %4d MB  weights %.1f MB  T=%.2fs  $%.6f\n",
			i, l.LayerLo, l.LayerHi, l.MemoryMB,
			float64(l.Profile.WeightsBytes)/(1<<20), l.EstTime.Seconds(), l.EstCost)
	}
	return nil
}

func cmdInfer(args []string) error {
	fs := flag.NewFlagSet("infer", flag.ExitOnError)
	model := fs.String("model", "mobilenet", "zoo model name")
	slo := fs.Duration("slo", 0, "response-time SLO")
	images := fs.Int("images", 1, "number of images")
	sequential := fs.Bool("sequential", false, "strictly sequential invocations")
	real := fs.Bool("real", false, "run real forward passes (slow for big models)")
	timeline := fs.Bool("timeline", false, "render an ASCII timeline of the job")
	faultRate := fs.Float64("fault-rate", 0, "inject platform faults at this overall rate (0..1)")
	faultSeed := fs.Int64("fault-seed", 1, "fault-injection and retry-jitter seed")
	retries := fs.Int("retries", 0, "max attempts per operation under faults (0 = default policy when faults are on)")
	traceOut := fs.String("trace", "", "write a Chrome trace-event JSON (load in ui.perfetto.dev) to this file")
	spansOut := fs.String("spans", "", "write the full span-tree JSON dump to this file")
	metricsOut := fs.String("metrics", "", "write a metrics snapshot JSON to this file")
	startProf := profileFlags(fs)
	fs.Parse(args)
	stopProf, err := startProf()
	if err != nil {
		return err
	}
	defer stopProf()

	m, err := buildModel(*model)
	if err != nil {
		return err
	}
	w := nn.InitWeights(m, 1)
	opts := core.Options{}
	subOpts := core.SubmitOptions{SLO: *slo, SkipCompute: !*real}
	if *faultRate > 0 || *retries > 1 {
		opts.Faults = faults.New(faults.Uniform(*faultRate, *faultSeed))
		subOpts.Retry = coordinator.DefaultRetryPolicy()
		subOpts.Retry.JitterSeed = *faultSeed
		if *retries > 0 {
			subOpts.Retry.MaxAttempts = *retries
		}
	}
	var tracer *obs.Tracer
	if *traceOut != "" || *spansOut != "" {
		tracer = obs.NewTracer()
		opts.Trace = tracer
	}
	var mx *obs.Metrics
	if *metricsOut != "" {
		mx = obs.NewMetrics()
		opts.Metrics = mx
	}
	fw := core.NewFramework(opts)
	svc, err := fw.Submit(m, w, subOpts)
	if err != nil {
		return err
	}
	defer svc.Close()
	fmt.Printf("deployed %d partition(s), memories %v, planning took %v\n",
		svc.Partitions(), svc.Plan.Memories(), svc.PlanningTime.Round(time.Millisecond))

	imgs := workload.Images(m, *images, 7)
	if *images == 1 {
		var rep *coordinator.Report
		if *sequential {
			rep, err = svc.InferSequential(imgs[0])
		} else {
			rep, err = svc.Infer(imgs[0])
		}
		if err != nil {
			return err
		}
		fmt.Printf("served 1 image: completion %.2fs, cost $%.6f", rep.Completion.Seconds(), rep.Cost)
		if *real {
			fmt.Printf(", predicted class %d", tensor.ArgMax(rep.Output))
		}
		fmt.Println()
		if rep.FaultsInjected > 0 {
			fmt.Printf("absorbed %d injected fault(s) with %d retries (%.2fs backoff)\n",
				rep.FaultsInjected, rep.Retries, rep.BackoffWait.Seconds())
		}
		if *timeline {
			fmt.Print(coordinator.Timeline(rep, 64))
		}
	} else {
		r, err := svc.InferBatchParallel(imgs)
		if err != nil {
			return err
		}
		fmt.Printf("served %d images in parallel: completion %.2fs, total cost $%.6f\n",
			*images, r.Completion.Seconds(), r.Cost)
	}
	fmt.Println("billing breakdown:")
	bd := fw.Meter().Breakdown()
	keys := make([]string, 0, len(bd))
	for k := range bd {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-20s $%.6f\n", k, bd[k])
	}
	return writeObservability(tracer, mx, *traceOut, *spansOut, *metricsOut)
}

// writeObservability writes the requested trace/span/metrics exports.
func writeObservability(tracer *obs.Tracer, mx *obs.Metrics, traceOut, spansOut, metricsOut string) error {
	if traceOut != "" {
		jobs := tracer.Jobs()
		if err := writeFile(traceOut, func(w io.Writer) error {
			return obs.WriteChromeTrace(w, jobs)
		}); err != nil {
			return err
		}
		fmt.Printf("wrote Chrome trace (%d jobs, %d spans) to %s — load it in ui.perfetto.dev\n",
			len(jobs), obs.CountSpans(jobs), traceOut)
	}
	if spansOut != "" {
		if err := writeFile(spansOut, func(w io.Writer) error {
			return obs.WriteSpans(w, tracer.Jobs())
		}); err != nil {
			return err
		}
		fmt.Printf("wrote span dump to %s\n", spansOut)
	}
	if metricsOut != "" {
		if err := writeFile(metricsOut, mx.WriteJSON); err != nil {
			return err
		}
		fmt.Printf("wrote metrics snapshot to %s\n", metricsOut)
	}
	return nil
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	model := fs.String("model", "mobilenet", "zoo model name")
	slo := fs.Duration("slo", 0, "response-time SLO")
	requests := fs.Int("requests", 100, "number of requests in the trace")
	pattern := fs.String("pattern", "poisson", "arrival pattern: poisson, uniform or burst")
	rate := fs.Float64("rate", 5, "poisson arrival rate (requests/second)")
	window := fs.Duration("window", 30*time.Second, "uniform pattern: window the arrivals spread over")
	burstSize := fs.Int("burst-size", 8, "burst pattern: simultaneous requests per burst")
	gap := fs.Duration("gap", 5*time.Second, "burst pattern: gap between bursts")
	seed := fs.Int64("seed", 7, "arrival and backoff-jitter seed")
	limit := fs.Int("limit", 0, "account concurrency limit (0 = platform default)")
	sequential := fs.Bool("sequential", false, "strictly sequential invocations per request")
	real := fs.Bool("real", false, "run real forward passes (slow for big models)")
	full := fs.Bool("full", false, "print one line per request, not just the aggregates")
	faultRate := fs.Float64("fault-rate", 0, "inject platform faults at this overall rate (0..1)")
	retries := fs.Int("retries", 0, "max attempts per operation under faults (0 = default policy when faults are on)")
	burstEvery := fs.Duration("burst-every", 0, "overlay correlated fault storms with this mean gap (0 = uncorrelated faults)")
	burstLength := fs.Duration("burst-length", 0, "storm duration (0 = burst-every/4)")
	burstFactor := fs.Float64("burst-factor", 0, "fault-rate multiplier while a storm is active (0 = 10x)")
	deadline := fs.Duration("deadline", 0, "per-request completion deadline; exceeding it fails the request fast (0 = none)")
	shed := fs.Bool("shed", false, "shed requests predicted to miss the deadline before spending on them (requires -deadline)")
	tolerate := fs.Bool("tolerate", false, "record per-request failures as outcomes instead of aborting the trace")
	hedge := fs.Duration("hedge", 0, "hedge partition invocations that outlive this delay (0 = no hedging)")
	hedgePct := fs.Float64("hedge-pct", 0, "derive the hedge delay from this percentile of past attempt durations (0 = fixed -hedge delay)")
	hedgeRate := fs.Float64("hedge-rate", 0, "cap on the fraction of invocations that may hedge (0 = 0.25)")
	breakerN := fs.Int("breaker", 0, "trip a per-function circuit breaker after this many consecutive failures (0 = no breaker)")
	budget := fs.Float64("budget", 0, "global retry budget: token-bucket cap shared by every retry and hedge (0 = unbudgeted)")
	budgetEarn := fs.Float64("budget-earn", 0, "budget tokens earned per first-attempt success (0 = 0.1)")
	fallbackBits := fs.Int("fallback-bits", 0, "pre-deploy a 4- or 8-bit quantized fallback plan the brownout ladder can swap onto (0 = none)")
	brownout := fs.Bool("brownout", false, "enable the adaptive brownout ladder (watches -metrics-window windows; hedges off -> wider batches -> quantized fallback -> hard shed)")
	brownoutP99 := fs.Duration("brownout-p99", 0, "brownout: mark a window unhealthy when its completion p99 exceeds this (0 = trigger off)")
	brownoutBad := fs.Float64("brownout-bad", 0, "brownout: mark a window unhealthy above this bad-outcome fraction (0 = 0.2)")
	domains := fs.Int("domains", 0, "spread containers over this many failure domains (0 or 1 = no domains)")
	outageEvery := fs.Duration("domain-outage-every", 0, "mean gap between whole-domain outage storms (0 = no storms)")
	outageLength := fs.Duration("domain-outage-length", 0, "duration of each domain outage (0 = domain-outage-every/4)")
	pipeline := fs.Int("pipeline", 0, "overlap up to this many requests across partition stages (0 or 1 = sequential admission)")
	batch := fs.Int("batch", 0, "coalesce up to this many queued requests per invocation (-1 = optimizer co-planned size, 0 or 1 = off)")
	batchWindow := fs.Duration("batch-window", 0, "how long a batch leader holds the queue open for followers (0 = 1s default)")
	sampleRate := fs.Float64("sample-rate", 0, "span-sampling rate in [0,1]: fraction of requests whose span trees are kept (0 = always-on tracing)")
	metricsWindow := fs.Duration("metrics-window", time.Second, "time-series window width for -http and -stream exports")
	httpAddr := fs.String("http", "", "serve live telemetry on this address (/metrics, /metrics/stream, /spans); blocks after the run until interrupted")
	streamOut := fs.String("stream", "", "write the NDJSON metrics window stream to this file")
	traceOut := fs.String("trace", "", "write a Chrome trace-event JSON (load in ui.perfetto.dev) to this file")
	spansOut := fs.String("spans", "", "write the full span-tree JSON dump to this file")
	metricsOut := fs.String("metrics", "", "write a metrics snapshot JSON to this file")
	startProf := profileFlags(fs)
	fs.Parse(args)
	stopProf, err := startProf()
	if err != nil {
		return err
	}
	defer stopProf()

	m, err := buildModel(*model)
	if err != nil {
		return err
	}
	w := nn.InitWeights(m, 1)
	opts := core.Options{}
	subOpts := core.SubmitOptions{SLO: *slo, SkipCompute: !*real}
	if *faultRate > 0 || *retries > 1 || *domains > 1 {
		fcfg := faults.Uniform(*faultRate, *seed)
		fcfg.BurstEvery = *burstEvery
		fcfg.BurstLength = *burstLength
		fcfg.BurstFactor = *burstFactor
		fcfg.Domains = *domains
		fcfg.DomainOutageEvery = *outageEvery
		fcfg.DomainOutageLength = *outageLength
		opts.Faults = faults.New(fcfg)
		subOpts.Retry = coordinator.DefaultRetryPolicy()
		subOpts.Retry.JitterSeed = *seed
		if *retries > 0 {
			subOpts.Retry.MaxAttempts = *retries
		}
	}
	if *budget > 0 {
		subOpts.Budget = coordinator.BudgetPolicy{MaxTokens: *budget, EarnPerSuccess: *budgetEarn}
	}
	if *fallbackBits > 0 {
		subOpts.FallbackBits = *fallbackBits
	}
	if *brownout {
		subOpts.Brownout = serving.BrownoutPolicy{
			Enabled: true, P99: *brownoutP99, BadFraction: *brownoutBad,
		}
	}
	if *hedge > 0 || *hedgePct > 0 {
		subOpts.Hedge = coordinator.HedgePolicy{
			Percentile: *hedgePct, Delay: *hedge,
			MaxRate: *hedgeRate, JitterSeed: *seed,
		}
	}
	if *breakerN > 0 {
		subOpts.Breaker = coordinator.BreakerPolicy{ConsecutiveFailures: *breakerN}
	}
	var tracer *obs.Tracer
	if *traceOut != "" || *spansOut != "" {
		tracer = obs.NewTracer()
		opts.Trace = tracer
	}
	var mx *obs.Metrics
	if *metricsOut != "" || *httpAddr != "" {
		mx = obs.NewMetrics()
		opts.Metrics = mx
	}
	var series *obs.TimeSeries
	if *httpAddr != "" || *streamOut != "" || *brownout {
		// The brownout controller closes its loop over this same window
		// stream, so enabling it implies a series even with no exports.
		series = obs.NewTimeSeries(*metricsWindow)
		opts.Series = series
	}
	// Close is idempotent; the deferred call covers error returns so a
	// failed run still flushes its tail window and releases any
	// /metrics/stream?follow=1 followers.
	defer series.Close()
	fw := core.NewFramework(opts)
	svc, err := fw.Submit(m, w, subOpts)
	if err != nil {
		return err
	}
	defer svc.Close()
	if *limit > 0 {
		fw.Platform().SetAccountConcurrency(*limit)
	}

	// The telemetry endpoints bind before the run starts, so scrapers
	// (and CI smoke checks) can poll /metrics while requests are being
	// served; the registry and series carry their own locks.
	var state *obs.ServeState
	var srv *http.Server
	if *httpAddr != "" {
		state = obs.NewServeState(mx, series)
		ln, lerr := net.Listen("tcp", *httpAddr)
		if lerr != nil {
			return lerr
		}
		srv = &http.Server{Handler: state.Handler()}
		go srv.Serve(ln)
		fmt.Printf("telemetry: http://%s (/metrics, /metrics/stream, /spans)\n", ln.Addr())
	}
	fmt.Printf("deployed %d partition(s), memories %v, account concurrency %d\n",
		svc.Partitions(), svc.Plan.Memories(), fw.Platform().AccountConcurrency())

	var arrivals []time.Duration
	switch *pattern {
	case "poisson":
		arrivals = workload.PoissonArrivals(*requests, *rate, *seed)
	case "uniform":
		arrivals = workload.UniformArrivals(*requests, *window)
	case "burst":
		arrivals = workload.BurstArrivals(*requests, *burstSize, *gap)
	default:
		return fmt.Errorf("unknown arrival pattern %q", *pattern)
	}
	inputs := workload.Images(m, *requests, *seed)

	if *batch != 0 {
		if chosen := svc.BatchPlan.Chosen; chosen > 0 {
			if opt := svc.BatchPlan.Option(chosen); opt != nil {
				fmt.Printf("batch co-plan: size %d at $%.6f/request (est. %.2fs per batched pass)\n",
					chosen, opt.CostPerRequest, opt.EstTime.Seconds())
			}
		}
	}
	rep, err := svc.Serve(inputs, arrivals, serving.Config{
		Sequential: *sequential,
		Throttle:   serving.ThrottlePolicy{JitterSeed: *seed},
		SLO: serving.SLOPolicy{
			Deadline: *deadline, Shed: *shed, TolerateFailures: *tolerate,
		},
		Pipeline: serving.PipelinePolicy{Depth: *pipeline},
		Batch:    serving.BatchPolicy{MaxBatch: *batch, Window: *batchWindow, JitterSeed: *seed},
		Sample:   serving.SamplePolicy{Rate: *sampleRate, Seed: *seed},
		Metrics:  mx,
		Series:   series,
	})
	if err != nil {
		return err
	}
	series.Close()
	if *full {
		fmt.Print(rep.Render())
	} else {
		fmt.Print(rep.Summary())
	}

	fmt.Println("billing breakdown:")
	bd := fw.Meter().Breakdown()
	keys := make([]string, 0, len(bd))
	for k := range bd {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-20s $%.6f\n", k, bd[k])
	}

	// Export the request-level span trees (queue waits + shifted job
	// trees on the serving clock), not the raw per-job trees.
	roots := rep.Traces()
	if *traceOut != "" {
		if err := writeFile(*traceOut, func(w io.Writer) error {
			return obs.WriteChromeTrace(w, roots)
		}); err != nil {
			return err
		}
		fmt.Printf("wrote Chrome trace (%d requests, %d spans) to %s — load it in ui.perfetto.dev\n",
			len(roots), obs.CountSpans(roots), *traceOut)
	}
	if *spansOut != "" {
		if err := writeFile(*spansOut, func(w io.Writer) error {
			return obs.WriteSpans(w, roots)
		}); err != nil {
			return err
		}
		fmt.Printf("wrote span dump to %s\n", *spansOut)
	}
	if *metricsOut != "" {
		if err := writeFile(*metricsOut, mx.WriteJSON); err != nil {
			return err
		}
		fmt.Printf("wrote metrics snapshot to %s\n", *metricsOut)
	}
	if *streamOut != "" {
		if err := writeFile(*streamOut, series.WriteNDJSON); err != nil {
			return err
		}
		fmt.Printf("wrote %d metrics windows to %s\n", len(series.Frames()), *streamOut)
	}
	if state != nil {
		state.SetSpans(func() []*obs.Span { return roots })
		fmt.Println("run complete; telemetry endpoints stay live — interrupt (Ctrl-C) to exit")
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		// The series closed when the run finished, so stream followers
		// have already been handed the final partial window and released;
		// Shutdown drains whatever snapshot responses are still in flight
		// instead of cutting them off mid-write.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return fmt.Errorf("telemetry shutdown: %w", err)
		}
	}
	return nil
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	model := fs.String("model", "mobilenet", "zoo model name (must fit one lambda)")
	traceOut := fs.String("trace", "", "serve one job per memory block and write a Chrome trace-event JSON to this file")
	metricsOut := fs.String("metrics", "", "serve one job per memory block and write a metrics snapshot JSON to this file")
	startProf := profileFlags(fs)
	fs.Parse(args)
	stopProf, err := startProf()
	if err != nil {
		return err
	}
	defer stopProf()
	m, err := buildModel(*model)
	if err != nil {
		return err
	}
	o, err := optimizer.New(optimizer.Request{Model: m, Perf: perf.Default()})
	if err != nil {
		return err
	}
	S := len(o.Segments())
	fmt.Println("memMB  time(s)  cost($)")
	for _, mem := range pricing.MemoryBlocks() {
		t, c, err := o.SpanEstimate(0, S, mem)
		if err != nil {
			continue
		}
		fmt.Printf("%5d  %7.2f  %.6f\n", mem, t.Seconds(), c)
	}
	if !o.SpanFeasible(0, S) {
		fmt.Println(strings.Repeat("-", 24))
		fmt.Printf("%s does not fit a single lambda; use `ampsinf plan` for a partitioning\n", m.Name)
		return nil
	}
	if *traceOut == "" && *metricsOut == "" {
		return nil
	}
	return sweepMeasured(m, o, S, *traceOut, *metricsOut)
}

// sweepMeasured re-runs the sweep for real: one single-lambda eager job
// per memory block on a fresh simulated environment, traced and
// metered, so the estimate table above can be compared phase-by-phase
// against an actual execution in Perfetto.
func sweepMeasured(m *nn.Model, o *optimizer.Optimizer, segments int, traceOut, metricsOut string) error {
	var tracer *obs.Tracer
	if traceOut != "" {
		tracer = obs.NewTracer()
	}
	var mx *obs.Metrics
	if metricsOut != "" {
		mx = obs.NewMetrics()
	}
	w := nn.InitWeights(m, 1)
	img := workload.Images(m, 1, 7)[0]

	fmt.Println(strings.Repeat("-", 24))
	fmt.Println("measured (one eager job per memory block):")
	fmt.Println("memMB  time(s)  cost($)")
	for _, mem := range pricing.MemoryBlocks() {
		if _, _, err := o.SpanEstimate(0, segments, mem); err != nil {
			continue
		}
		plan, err := optimizer.Optimize(optimizer.Request{
			Model: m, Perf: perf.Default(), MaxLambdas: 1,
		})
		if err != nil {
			return err
		}
		plan.Lambdas[0].MemoryMB = mem

		meter := &billing.Meter{}
		if tracer != nil {
			meter.SetObserver(tracer.RecordCost)
		}
		platform := lambda.New(meter, perf.Default())
		platform.SetMetrics(mx)
		store := s3.New(s3.DefaultConfig(), meter)
		store.SetMetrics(mx)
		dep, err := coordinator.Deploy(coordinator.Config{
			Platform: platform, Store: store,
			NamePrefix:  fmt.Sprintf("sweep-%d", mem),
			SkipCompute: true, Tracer: tracer, Metrics: mx,
		}, m, w, plan)
		if err != nil {
			return err
		}
		rep, err := dep.RunEager(img)
		dep.Teardown()
		if err != nil {
			return err
		}
		fmt.Printf("%5d  %7.2f  %.6f\n", mem, rep.Completion.Seconds(), rep.Cost)
	}
	return writeObservability(tracer, mx, traceOut, "", metricsOut)
}
