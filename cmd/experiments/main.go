// Command experiments regenerates every table and figure of the paper's
// evaluation on the simulated platform and prints them to stdout.
//
// Usage:
//
//	experiments [-only <id>] [-metrics <file>]
//	            [-stream <file>] [-metrics-window 1s]
//	            [-cpuprofile <file>] [-memprofile <file>]
//
// where <id> is e.g. "table1", "figure9". Without -only, everything runs
// in paper order. With -metrics, a sorted-key JSON snapshot of every
// simulator and coordinator metric accumulated across the run is
// written to <file> ("-" for stdout) after the tables. With -stream,
// the windowed NDJSON metrics stream accumulated across the run is
// written to <file> ("-" for stdout). The profile flags capture pprof
// CPU/heap profiles of the run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"ampsinf/internal/experiments"
	"ampsinf/internal/obs"
	"ampsinf/internal/prof"
)

func main() {
	only := flag.String("only", "", "run a single experiment (e.g. table1, figure9)")
	metricsOut := flag.String("metrics", "", `write a metrics snapshot JSON to this file ("-" = stdout)`)
	streamOut := flag.String("stream", "", `write the NDJSON metrics window stream to this file ("-" = stdout)`)
	metricsWindow := flag.Duration("metrics-window", time.Second, "time-series window width for -stream")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	flag.Parse()

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	defer stopProf()

	var mx *obs.Metrics
	if *metricsOut != "" {
		mx = obs.NewMetrics()
		experiments.SetMetrics(mx)
	}
	var series *obs.TimeSeries
	if *streamOut != "" {
		series = obs.NewTimeSeries(*metricsWindow)
		experiments.SetSeries(series)
	}

	type job struct {
		id  string
		run func() (*experiments.Table, error)
	}

	var mainCmp *experiments.MainComparison
	getMain := func() (*experiments.MainComparison, error) {
		if mainCmp != nil {
			return mainCmp, nil
		}
		var err error
		mainCmp, err = experiments.RunMainComparison()
		return mainCmp, err
	}
	var baseCmp *experiments.BaselineComparison
	getBase := func() (*experiments.BaselineComparison, error) {
		if baseCmp != nil {
			return baseCmp, nil
		}
		var err error
		baseCmp, err = experiments.RunBaselineComparison()
		return baseCmp, err
	}

	jobs := []job{
		{"table1", func() (*experiments.Table, error) { return experiments.Table1().Table(), nil }},
		{"figure1", func() (*experiments.Table, error) {
			r, err := experiments.Figure1()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"table2", func() (*experiments.Table, error) {
			r, err := experiments.Table2()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"figure2", func() (*experiments.Table, error) {
			r, err := experiments.Figure2()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"table3", func() (*experiments.Table, error) {
			r, err := experiments.Table3()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"figure5", func() (*experiments.Table, error) {
			r, err := getMain()
			if err != nil {
				return nil, err
			}
			return r.Figure5(), nil
		}},
		{"figure6", func() (*experiments.Table, error) {
			r, err := getMain()
			if err != nil {
				return nil, err
			}
			return r.Figure6(), nil
		}},
		{"table4", func() (*experiments.Table, error) {
			r, err := getMain()
			if err != nil {
				return nil, err
			}
			return r.Table4(), nil
		}},
		{"figure7", func() (*experiments.Table, error) {
			r, err := getMain()
			if err != nil {
				return nil, err
			}
			return r.Figure7(), nil
		}},
		{"figure8", func() (*experiments.Table, error) {
			r, err := getMain()
			if err != nil {
				return nil, err
			}
			return r.Figure8(), nil
		}},
		{"figure9", func() (*experiments.Table, error) {
			r, err := getBase()
			if err != nil {
				return nil, err
			}
			return r.Figure9(), nil
		}},
		{"figure10", func() (*experiments.Table, error) {
			r, err := getBase()
			if err != nil {
				return nil, err
			}
			return r.Figure10(), nil
		}},
		{"figure11", func() (*experiments.Table, error) {
			r, err := experiments.Figure11()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"figure12", func() (*experiments.Table, error) {
			r, err := experiments.Figure12()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"table5", func() (*experiments.Table, error) {
			r, err := experiments.Table5()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"figure13", func() (*experiments.Table, error) {
			r, err := experiments.Figure13()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"ablation-scheduling", func() (*experiments.Table, error) {
			r, err := experiments.AblationScheduling()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"ablation-quota", func() (*experiments.Table, error) {
			r, err := experiments.AblationQuota()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"ablation-quantization", func() (*experiments.Table, error) {
			r, err := experiments.AblationQuantization()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"ablation-pressure", func() (*experiments.Table, error) {
			r, err := experiments.AblationPressure()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"ablation-storage", func() (*experiments.Table, error) {
			r, err := experiments.AblationStorage()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"reliability", func() (*experiments.Table, error) {
			r, err := experiments.RunReliability()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"serving-scaling", func() (*experiments.Table, error) {
			r, err := experiments.RunServingScaling()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"resilience", func() (*experiments.Table, error) {
			r, err := experiments.RunResilience()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"pipeline-batch", func() (*experiments.Table, error) {
			r, err := experiments.RunPipelineBatch()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"overload", func() (*experiments.Table, error) {
			r, err := experiments.RunOverload()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
	}

	ran := 0
	for _, j := range jobs {
		if *only != "" && !strings.EqualFold(*only, j.id) {
			continue
		}
		t, err := j.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", j.id, err)
			os.Exit(1)
		}
		fmt.Println(t.Render())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *only)
		os.Exit(2)
	}
	if mx != nil {
		if err := writeOut(mx.WriteJSON, *metricsOut); err != nil {
			fmt.Fprintf(os.Stderr, "metrics: %v\n", err)
			os.Exit(1)
		}
	}
	if series != nil {
		series.Close()
		if err := writeOut(series.WriteNDJSON, *streamOut); err != nil {
			fmt.Fprintf(os.Stderr, "stream: %v\n", err)
			os.Exit(1)
		}
	}
}

func writeOut(write func(io.Writer) error, path string) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
