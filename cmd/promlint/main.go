// Command promlint validates a Prometheus text exposition read from
// stdin: legal metric and label names, quoted label values, parseable
// sample values, well-formed TYPE comments, and at least one sample.
// CI's monitor-smoke step pipes a live `/metrics` scrape through it.
//
// Usage:
//
//	curl -fsS http://127.0.0.1:9090/metrics | promlint
package main

import (
	"fmt"
	"os"

	"ampsinf/internal/obs"
)

func main() {
	n, err := obs.LintExposition(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promlint: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("promlint: ok (%d samples)\n", n)
}
