// Batch serving: the paper's Sec. 5.4 scenario. Serve many images through
// an AMPS-Inf deployment in the three supported modes — one batched
// pipeline pass, sequential per-image jobs on warm containers, and
// parallel per-image pipelines — and compare with the BATCH baseline
// (single lambda, buffered batches, no model splitting).
//
//	go run ./examples/batchserving
package main

import (
	"fmt"
	"log"
	"time"

	"ampsinf/internal/baselines"
	"ampsinf/internal/cloud/billing"
	"ampsinf/internal/cloud/lambda"
	"ampsinf/internal/cloud/s3"
	"ampsinf/internal/coordinator"
	"ampsinf/internal/core"
	"ampsinf/internal/nn"
	"ampsinf/internal/nn/zoo"
	"ampsinf/internal/optimizer"
	"ampsinf/internal/perf"
	"ampsinf/internal/workload"
)

func main() {
	const nImages = 20
	model, err := zoo.Build("mobilenet", 0)
	if err != nil {
		log.Fatal(err)
	}
	weights := nn.InitWeights(model, 42)
	images := workload.Images(model, nImages, 3)

	// AMPS-Inf deployment with a tight SLO (larger memory, faster serving).
	fw := core.NewFramework(core.Options{})
	svc, err := fw.Submit(model, weights, core.SubmitOptions{
		SLO: 8 * time.Second, SkipCompute: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	fmt.Printf("AMPS-Inf: %d partition(s), memories %v MB\n\n", svc.Partitions(), svc.Plan.Memories())

	batched, err := svc.InferBatched(images)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s completion %7.2fs   cost $%.6f\n", "one batched pass:", batched.Completion.Seconds(), batched.Cost)

	seq, err := svc.InferBatchSequential(images)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s completion %7.2fs   cost $%.6f\n", "sequential jobs:", seq.Completion.Seconds(), seq.Cost)

	par, err := svc.InferBatchParallel(images)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s completion %7.2fs   cost $%.6f\n\n", "parallel pipelines:", par.Completion.Seconds(), par.Cost)

	// The BATCH baseline: one 2048 MB lambda, batches of 5, no splitting.
	meter := &billing.Meter{}
	platform := lambda.New(meter, perf.Default())
	store := s3.New(s3.DefaultConfig(), meter)
	o, err := optimizer.New(optimizer.Request{Model: model, Perf: perf.Default()})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := baselines.NewBATCH(coordinator.Config{
		Platform: platform, Store: store, SkipCompute: true,
	}, o, weights, 2048, 5)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	rep, err := sys.Serve(images)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s completion %7.2fs   cost $%.6f   (%d buffered batches)\n",
		"BATCH baseline:", rep.Completion.Seconds(), rep.Cost, rep.Batches)
}
