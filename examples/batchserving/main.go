// Batch serving: the paper's Sec. 5.4 scenario. Serve many images through
// an AMPS-Inf deployment in the three supported modes — one batched
// pipeline pass, sequential per-image jobs on warm containers, and
// parallel per-image pipelines — and compare with the BATCH baseline
// (single lambda, buffered batches, no model splitting). A final section
// moves batching from the tensor layer into the serving layer: the same
// Poisson request stream served request-at-a-time and then through the
// admission-side coalescer at the optimizer's co-planned batch size.
//
//	go run ./examples/batchserving
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"ampsinf/internal/baselines"
	"ampsinf/internal/cloud/billing"
	"ampsinf/internal/cloud/lambda"
	"ampsinf/internal/cloud/s3"
	"ampsinf/internal/coordinator"
	"ampsinf/internal/core"
	"ampsinf/internal/nn"
	"ampsinf/internal/nn/zoo"
	"ampsinf/internal/optimizer"
	"ampsinf/internal/perf"
	"ampsinf/internal/serving"
	"ampsinf/internal/workload"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	const nImages = 20
	model, err := zoo.Build("mobilenet", 0)
	if err != nil {
		return err
	}
	weights := nn.InitWeights(model, 42)
	images := workload.Images(model, nImages, 3)

	// AMPS-Inf deployment with a tight SLO (larger memory, faster serving).
	fw := core.NewFramework(core.Options{})
	svc, err := fw.Submit(model, weights, core.SubmitOptions{
		SLO: 8 * time.Second, SkipCompute: true,
	})
	if err != nil {
		return err
	}
	defer svc.Close()
	fmt.Fprintf(w, "AMPS-Inf: %d partition(s), memories %v MB\n\n", svc.Partitions(), svc.Plan.Memories())

	batched, err := svc.InferBatched(images)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-22s completion %7.2fs   cost $%.6f\n", "one batched pass:", batched.Completion.Seconds(), batched.Cost)

	seq, err := svc.InferBatchSequential(images)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-22s completion %7.2fs   cost $%.6f\n", "sequential jobs:", seq.Completion.Seconds(), seq.Cost)

	par, err := svc.InferBatchParallel(images)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-22s completion %7.2fs   cost $%.6f\n\n", "parallel pipelines:", par.Completion.Seconds(), par.Cost)

	// The BATCH baseline: one 2048 MB lambda, batches of 5, no splitting.
	meter := &billing.Meter{}
	platform := lambda.New(meter, perf.Default())
	store := s3.New(s3.DefaultConfig(), meter)
	o, err := optimizer.New(optimizer.Request{Model: model, Perf: perf.Default()})
	if err != nil {
		return err
	}
	sys, err := baselines.NewBATCH(coordinator.Config{
		Platform: platform, Store: store, SkipCompute: true,
	}, o, weights, 2048, 5)
	if err != nil {
		return err
	}
	defer sys.Close()
	rep, err := sys.Serve(images)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-22s completion %7.2fs   cost $%.6f   (%d buffered batches)\n\n",
		"BATCH baseline:", rep.Completion.Seconds(), rep.Cost, rep.Batches)

	// Serving-level batching: the scenarios above stack tensors before the
	// request ever reaches the deployment. The serving layer can instead
	// coalesce independently arriving requests at admission — a bounded
	// window gathers co-arriving requests into one invocation chain, and
	// the chain's exact cost is split back across the members. The
	// optimizer co-plans the batch size against each partition's memory
	// block and the SLO at Submit; MaxBatch -1 below asks for that size.
	opt := svc.BatchPlan.Option(svc.BatchPlan.Chosen)
	fmt.Fprintf(w, "co-planned batch size %d: $%.6f/request, %.2fs per batched pass\n",
		opt.Batch, opt.CostPerRequest, opt.EstTime.Seconds())

	serveStream := func(batch serving.BatchPolicy) (*serving.Report, error) {
		sfw := core.NewFramework(core.Options{})
		ssvc, err := sfw.Submit(model, weights, core.SubmitOptions{
			SLO: 8 * time.Second, SkipCompute: true,
		})
		if err != nil {
			return nil, err
		}
		defer ssvc.Close()
		arrivals := workload.PoissonArrivals(nImages, 2.0, 7)
		return ssvc.Serve(images, arrivals, serving.Config{
			Throttle: serving.ThrottlePolicy{JitterSeed: 7},
			Batch:    batch,
		})
	}
	plain, err := serveStream(serving.BatchPolicy{MaxBatch: 1})
	if err != nil {
		return err
	}
	coal, err := serveStream(serving.BatchPolicy{MaxBatch: -1, Window: 2 * time.Second, JitterSeed: 7})
	if err != nil {
		return err
	}
	for _, s := range []struct {
		name string
		rep  *serving.Report
	}{{"request-at-a-time:", plain}, {"coalesced stream:", coal}} {
		fmt.Fprintf(w, "%-22s %.2f req/s   avg latency %6.2fs   cost $%.6f ($%.6f/req)\n",
			s.name, s.rep.Throughput, s.rep.AvgLatency.Seconds(), s.rep.TotalCost, s.rep.CostPerJob)
	}
	return nil
}
