package main

import (
	"strings"
	"testing"
)

// TestRunSmoke executes the whole example end to end so it cannot rot
// silently: every section, including the serving-level coalescing
// comparison, must run without error and produce its line.
func TestRunSmoke(t *testing.T) {
	var b strings.Builder
	if err := run(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"AMPS-Inf:",
		"one batched pass:",
		"sequential jobs:",
		"parallel pipelines:",
		"BATCH baseline:",
		"co-planned batch size",
		"request-at-a-time:",
		"coalesced stream:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
