// Serving under load: drive an AMPS-Inf deployment with an open-loop
// Poisson request trace and report the latency distribution and cost —
// the regime the BATCH baseline's buffering targets. Compare a
// cost-optimal deployment against an SLO-tightened one to see the
// provisioning knob at work.
//
//	go run ./examples/servingload
package main

import (
	"fmt"
	"log"
	"time"

	"ampsinf/internal/core"
	"ampsinf/internal/nn"
	"ampsinf/internal/nn/zoo"
	"ampsinf/internal/workload"
)

func main() {
	const (
		requests = 30
		ratePerS = 0.08 // one request every ~12.5 s
	)
	model, err := zoo.Build("mobilenet", 0)
	if err != nil {
		log.Fatal(err)
	}
	weights := nn.InitWeights(model, 42)
	inputs := workload.Images(model, requests, 17)
	arrivals := workload.PoissonArrivals(requests, ratePerS, 99)

	fmt.Printf("trace: %d requests over %.0fs (Poisson, %.2f req/s)\n\n",
		requests, arrivals[len(arrivals)-1].Seconds(), ratePerS)
	fmt.Println("deployment        mems(MB)   avg lat    p95 lat    makespan   cost($)")

	for _, cfg := range []struct {
		label string
		slo   time.Duration
	}{
		{"cost-optimal", 0},
		{"SLO 8s", 8 * time.Second},
	} {
		fw := core.NewFramework(core.Options{})
		svc, err := fw.Submit(model, weights, core.SubmitOptions{
			SLO: cfg.slo, SkipCompute: true, NamePrefix: "load-" + cfg.label,
		})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := svc.ServeTrace(inputs, arrivals)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s  %-9s  %7.2fs   %7.2fs   %7.2fs   %.5f\n",
			cfg.label, fmt.Sprint(svc.Plan.Memories()),
			rep.AvgLatency.Seconds(), rep.P95Latency.Seconds(),
			rep.Makespan.Seconds(), rep.Cost)
		svc.Close()
	}
	fmt.Println("\nA tighter SLO buys shorter service times, which also drains the")
	fmt.Println("queue faster — lower tail latency at a higher per-request cost.")
}
