// Quickstart: submit a pre-trained model to AMPS-Inf and serve one image.
//
// The framework profiles the model, solves the partitioning/provisioning
// MIQP, deploys the partitions as (simulated) lambda functions with the
// dependency layer attached, and serves inference with activations staged
// through S3 — all from a few lines of user code.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"ampsinf/internal/core"
	"ampsinf/internal/nn"
	"ampsinf/internal/nn/zoo"
	"ampsinf/internal/tensor"
	"ampsinf/internal/workload"
)

func main() {
	// A pre-trained Keras model stands in as a zoo build with
	// deterministic weights (the paper never relies on accuracy).
	model, err := zoo.Build("mobilenet", 0)
	if err != nil {
		log.Fatal(err)
	}
	weights := nn.InitWeights(model, 42)

	fw := core.NewFramework(core.Options{})
	svc, err := fw.Submit(model, weights, core.SubmitOptions{
		SLO: 12 * time.Second, // response-time objective
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	fmt.Printf("deployed %q on %d lambda(s) with memories %v MB\n",
		model.Name, svc.Partitions(), svc.Plan.Memories())
	fmt.Printf("plan: est. response %.2fs, est. cost $%.6f (computed in %v)\n",
		svc.Plan.EstTime.Seconds(), svc.Plan.EstCost, svc.PlanningTime.Round(time.Millisecond))

	image := workload.Image(model, 7)
	rep, err := svc.Infer(image)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("served one image: completion %.2fs (simulated), cost $%.6f, class %d\n",
		rep.Completion.Seconds(), rep.Cost, tensor.ArgMax(rep.Output))

	// The prediction is bit-identical to running the un-partitioned model.
	direct, err := model.Forward(weights, image)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matches direct forward pass: %v\n", tensor.AllClose(direct, rep.Output, 0))
	fmt.Printf("total metered spend:\n%s\n", fw.Meter())
}
