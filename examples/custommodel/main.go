// Custom model: build your own layer graph with the nn.Builder, let
// AMPS-Inf partition and deploy it, and verify that the partitioned
// serverless prediction is bit-identical to a direct forward pass —
// including across a residual block, which constrains where the model
// may legally be cut.
//
//	go run ./examples/custommodel
package main

import (
	"fmt"
	"log"

	"ampsinf/internal/core"
	"ampsinf/internal/nn"
	"ampsinf/internal/nn/zoo"
	"ampsinf/internal/tensor"
	"ampsinf/internal/workload"
)

// buildClassifier assembles a small residual CNN for 48×48 RGB inputs.
func buildClassifier() *nn.Model {
	b := nn.NewBuilder("custom-resnet", 48, 48, 3)
	x := b.Conv("stem", b.Input(), 16, 3, 3, 1, tensor.Same, nn.ActReLU)
	x = b.MaxPool("pool1", x, 2, 2, tensor.Valid)

	// A residual block: no valid cut point exists between "stem_out" and
	// "merge" because the skip connection keeps the input alive.
	skip := x
	y := b.Conv("res_a", x, 16, 3, 3, 1, tensor.Same, nn.ActReLU)
	y = b.Conv("res_b", y, 16, 3, 3, 1, tensor.Same, nn.ActNone)
	x = b.Add("merge", nn.ActReLU, skip, y)

	x = b.Conv("head_conv", x, 32, 3, 3, 2, tensor.Same, nn.ActReLU)
	x = b.BatchNorm("head_bn", x)
	x = b.GlobalAvgPool("gap", x)
	x = b.Dense("fc", x, 64, nn.ActReLU)
	b.Dense("out", x, 7, nn.ActSoftmax)
	return b.Model()
}

func main() {
	model := buildClassifier()
	fmt.Print(model.Summary())

	segs := model.Segments()
	fmt.Printf("\nvalid partition segments: %d (the residual block is atomic)\n\n", len(segs))

	weights := nn.InitWeights(model, 11)
	fw := core.NewFramework(core.Options{})
	// Cap layers per partition to force a real multi-lambda pipeline even
	// though this model is tiny.
	svc, err := fw.Submit(model, weights, core.SubmitOptions{MaxLayersPerPartition: 5})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	fmt.Printf("deployed on %d lambdas with memories %v MB\n", svc.Partitions(), svc.Plan.Memories())

	image := workload.Image(model, 99)
	rep, err := svc.Infer(image)
	if err != nil {
		log.Fatal(err)
	}
	direct, err := model.Forward(weights, image)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serverless prediction class %d, direct class %d, bit-identical: %v\n",
		tensor.ArgMax(rep.Output), tensor.ArgMax(direct), tensor.AllClose(rep.Output, direct, 0))
	fmt.Printf("completion %.2fs (simulated), cost $%.6f\n", rep.Completion.Seconds(), rep.Cost)

	// The zoo models use the same builder; e.g. compare segment structure.
	tiny := zoo.TinyCNN(0)
	fmt.Printf("\nfor reference, zoo tinycnn has %d segments\n", len(tiny.Segments()))
}
