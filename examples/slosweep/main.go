// SLO sweep: explore the cost/latency frontier the optimizer navigates.
// For a large model that must be partitioned, sweep the response-time SLO
// from generous to aggressive and print the plan chosen at each point —
// the serverless analogue of the paper's Fig 1 trade-off, driven by the
// MIQP rather than a manual memory knob.
//
//	go run ./examples/slosweep
package main

import (
	"fmt"
	"log"
	"time"

	"ampsinf/internal/nn/zoo"
	"ampsinf/internal/optimizer"
	"ampsinf/internal/perf"
)

func main() {
	model, err := zoo.Build("resnet50", 0)
	if err != nil {
		log.Fatal(err)
	}
	o, err := optimizer.New(optimizer.Request{Model: model, Perf: perf.Default()})
	if err != nil {
		log.Fatal(err)
	}

	base, err := o.OptimizeCostOnly()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cost-optimal (no SLO): %d lambdas %v MB, %.2fs, $%.6f\n\n",
		len(base.Lambdas), base.Memories(), base.EstTime.Seconds(), base.EstCost)

	fmt.Println("SLO(s)   met  lambdas  memories(MB)        time(s)  cost($)    λ")
	for factor := 1.0; factor >= 0.70; factor -= 0.05 {
		slo := time.Duration(float64(base.EstTime) * factor)
		plan, err := optimizer.Optimize(optimizer.Request{
			Model: model, Perf: perf.Default(), SLO: slo,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6.2f   %-5v %-8d %-18s  %6.2f   %.6f   %.2g\n",
			slo.Seconds(), plan.MeetsSLO, len(plan.Lambdas), fmt.Sprint(plan.Memories()),
			plan.EstTime.Seconds(), plan.EstCost, plan.LagrangeMultiplier)
	}
	fmt.Println("\nTighter SLOs buy speed with larger memory blocks at higher cost —")
	fmt.Println("the gap between AMPS-Inf and the cost-optimal Baseline 3 in Figs 9-10.")
}
